#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "ecc/rs.hh"

namespace nvck {
namespace {

std::vector<GfElem>
randomData(Rng &rng, unsigned k, unsigned field_size = 256)
{
    std::vector<GfElem> data(k);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.below(field_size));
    return data;
}

/** Corrupt @p count distinct symbols (guaranteed value change). */
std::vector<std::uint32_t>
corrupt(Rng &rng, std::vector<GfElem> &cw, unsigned count,
        unsigned field_size = 256)
{
    std::vector<std::uint32_t> positions;
    while (positions.size() < count) {
        const auto pos = static_cast<std::uint32_t>(rng.below(cw.size()));
        if (std::find(positions.begin(), positions.end(), pos) !=
            positions.end())
            continue;
        const GfElem delta =
            static_cast<GfElem>(1 + rng.below(field_size - 1));
        cw[pos] ^= delta;
        positions.push_back(pos);
    }
    return positions;
}

TEST(Rs, PaperGeometry)
{
    const RsCodec rs(64, 8);
    EXPECT_EQ(rs.n(), 72u);
    EXPECT_EQ(rs.dmin(), 9u); // MDS: d = r + 1
    EXPECT_EQ(rs.t(), 4u);    // corrects 4 byte errors
}

TEST(Rs, EncodeRoundTrip)
{
    const RsCodec rs(64, 8);
    Rng rng(1);
    const auto data = randomData(rng, 64);
    const auto cw = rs.encode(data);
    EXPECT_TRUE(rs.isCodeword(cw));
    EXPECT_EQ(rs.extractData(cw), data);
}

class RsErrorCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(RsErrorCount, CorrectsExactlyThatMany)
{
    const unsigned errors = GetParam();
    const RsCodec rs(64, 8);
    Rng rng(100 + errors);
    for (int trial = 0; trial < 50; ++trial) {
        const auto data = randomData(rng, 64);
        const auto clean = rs.encode(data);
        auto noisy = clean;
        corrupt(rng, noisy, errors);
        const auto res = rs.decode(noisy);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
        ASSERT_EQ(noisy, clean);
        ASSERT_EQ(res.corrections, errors);
        ASSERT_EQ(res.errorCorrections, errors);
    }
}

INSTANTIATE_TEST_SUITE_P(ZeroToFour, RsErrorCount,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(Rs, FiveErrorsNeverSilentlyCorrectToTruth)
{
    const RsCodec rs(64, 8);
    Rng rng(321);
    unsigned detected = 0, miscorrected = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const auto data = randomData(rng, 64);
        const auto clean = rs.encode(data);
        auto noisy = clean;
        corrupt(rng, noisy, 5);
        const auto res = rs.decode(noisy);
        if (res.status == DecodeStatus::Uncorrectable) {
            ++detected;
        } else {
            // d_min = 9 guarantees a 5-error word cannot decode back to
            // the transmitted codeword with <= 4 corrections.
            EXPECT_FALSE(noisy == clean);
            ++miscorrected;
        }
    }
    // The appendix predicts miscorrection for ~2.4e-4 of uncorrectable
    // words; with 300 trials we expect essentially all detected.
    EXPECT_GT(detected, 290u);
    EXPECT_EQ(detected + miscorrected, 300u);
}

TEST(Rs, ErasureOnlyCorrectionUpToR)
{
    // Eight erasures = a dead chip's eight beats (erasure correction,
    // Section V-B).
    const RsCodec rs(64, 8);
    Rng rng(77);
    const auto data = randomData(rng, 64);
    const auto clean = rs.encode(data);
    auto noisy = clean;

    // A failed chip: symbols 8..15 garbled.
    std::vector<std::uint32_t> erasures;
    for (std::uint32_t pos = 8; pos < 16; ++pos) {
        noisy[pos] = static_cast<GfElem>(rng.below(256));
        erasures.push_back(pos);
    }
    const auto res = rs.decode(noisy, erasures);
    ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
    EXPECT_EQ(noisy, clean);
}

TEST(Rs, NineErasuresRejected)
{
    const RsCodec rs(64, 8);
    Rng rng(78);
    auto cw = rs.encode(randomData(rng, 64));
    std::vector<std::uint32_t> erasures;
    for (std::uint32_t pos = 0; pos < 9; ++pos)
        erasures.push_back(pos);
    cw[0] ^= 1;
    const auto res = rs.decode(cw, erasures);
    EXPECT_EQ(res.status, DecodeStatus::Uncorrectable);
}

class RsErasureMix : public ::testing::TestWithParam<std::pair<unsigned,
                                                               unsigned>>
{};

TEST_P(RsErasureMix, CorrectsWhenTwoTPlusEWithinR)
{
    const auto [errors, erasure_count] = GetParam();
    ASSERT_LE(2 * errors + erasure_count, 8u);
    const RsCodec rs(64, 8);
    Rng rng(1000 + errors * 16 + erasure_count);
    for (int trial = 0; trial < 30; ++trial) {
        const auto data = randomData(rng, 64);
        const auto clean = rs.encode(data);
        auto noisy = clean;
        // Erase some positions (garble them, remember indices)...
        std::vector<std::uint32_t> erasures;
        while (erasures.size() < erasure_count) {
            const auto pos =
                static_cast<std::uint32_t>(rng.below(noisy.size()));
            if (std::find(erasures.begin(), erasures.end(), pos) !=
                erasures.end())
                continue;
            noisy[pos] = static_cast<GfElem>(rng.below(256));
            erasures.push_back(pos);
        }
        // ...then add genuine errors elsewhere.
        unsigned added = 0;
        while (added < errors) {
            const auto pos =
                static_cast<std::uint32_t>(rng.below(noisy.size()));
            if (std::find(erasures.begin(), erasures.end(), pos) !=
                erasures.end())
                continue;
            if (noisy[pos] != clean[pos])
                continue;
            noisy[pos] ^= static_cast<GfElem>(1 + rng.below(255));
            ++added;
        }
        const auto res = rs.decode(noisy, erasures);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable)
            << "errors=" << errors << " erasures=" << erasure_count;
        ASSERT_EQ(noisy, clean);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, RsErasureMix,
    ::testing::Values(std::pair{1u, 6u}, std::pair{2u, 4u},
                      std::pair{3u, 2u}, std::pair{1u, 2u},
                      std::pair{2u, 0u}, std::pair{0u, 8u},
                      std::pair{4u, 0u}, std::pair{0u, 3u}));

TEST(Rs, BoundedMaxErrorsRejectsBeyondCap)
{
    // The runtime corrector decodes with the full t = 4 capability but
    // the paper's threshold scheme accepts only <= 2 corrections; the
    // max_errors knob models a controller that refuses larger fixes.
    const RsCodec rs(64, 8);
    Rng rng(2024);
    const auto data = randomData(rng, 64);
    const auto clean = rs.encode(data);
    auto noisy = clean;
    corrupt(rng, noisy, 3);
    const auto before = noisy;
    const auto res = rs.decode(noisy, {}, 2);
    EXPECT_EQ(res.status, DecodeStatus::Uncorrectable);
    EXPECT_EQ(noisy, before); // untouched on rejection

    const auto res_full = rs.decode(noisy, {}, 4);
    EXPECT_EQ(res_full.status, DecodeStatus::Corrected);
    EXPECT_EQ(noisy, clean);
}

TEST(Rs, ErasureAtCheckSymbols)
{
    const RsCodec rs(64, 8);
    Rng rng(31);
    const auto data = randomData(rng, 64);
    const auto clean = rs.encode(data);
    auto noisy = clean;
    std::vector<std::uint32_t> erasures{0, 1, 2, 3, 4, 5, 6, 7};
    for (auto pos : erasures)
        noisy[pos] = static_cast<GfElem>(rng.below(256));
    const auto res = rs.decode(noisy, erasures);
    ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
    EXPECT_EQ(noisy, clean);
}

TEST(Rs, ErasedButCorrectSymbolsAreFine)
{
    // Declaring erasures whose symbols happen to be correct must still
    // decode (magnitude zero at those positions).
    const RsCodec rs(64, 8);
    Rng rng(32);
    const auto data = randomData(rng, 64);
    const auto clean = rs.encode(data);
    auto noisy = clean;
    std::vector<std::uint32_t> erasures{10, 20, 30};
    noisy[20] ^= 0x55; // only one of the three actually wrong
    const auto res = rs.decode(noisy, erasures);
    ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
    EXPECT_EQ(noisy, clean);
}

TEST(Rs, WorksForOtherGeometries)
{
    // e.g. a DUO-like wider configuration.
    const RsCodec rs(64, 16);
    Rng rng(5);
    const auto data = randomData(rng, 64);
    const auto clean = rs.encode(data);
    auto noisy = clean;
    corrupt(rng, noisy, 8);
    const auto res = rs.decode(noisy);
    ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
    EXPECT_EQ(noisy, clean);
    EXPECT_EQ(res.corrections, 8u);
}

TEST(Rs, RandomizedStressMixedLoads)
{
    const RsCodec rs(64, 8);
    Rng rng(909);
    for (int trial = 0; trial < 300; ++trial) {
        const auto data = randomData(rng, 64);
        const auto clean = rs.encode(data);
        auto noisy = clean;
        const unsigned errors = static_cast<unsigned>(rng.below(5));
        corrupt(rng, noisy, errors);
        const auto res = rs.decode(noisy);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
        ASSERT_EQ(noisy, clean) << "trial " << trial;
        ASSERT_EQ(res.corrections, errors);
    }
}

} // namespace
} // namespace nvck
