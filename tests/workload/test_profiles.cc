#include <gtest/gtest.h>

#include "workload/profiles.hh"

namespace nvck {
namespace {

TEST(Profiles, TenWhisperSixSplash)
{
    EXPECT_EQ(whisperProfiles().size(), 10u);
    EXPECT_EQ(splashProfiles().size(), 6u);
    EXPECT_EQ(allBenchmarkNames().size(), 16u);
}

TEST(Profiles, NamesMatchPaperFigures)
{
    for (const char *name :
         {"echo", "memcached", "redis", "ctree", "btree", "rbtree",
          "hashmap", "tpcc", "vacation", "ycsb", "barnes", "fmm",
          "ocean", "radix", "raytrace", "water"}) {
        EXPECT_EQ(findProfile(name).name, name);
    }
}

TEST(Profiles, WriteOnlyQueryBenchmarks)
{
    // Section VII: hashmap, ctree, btree, rbtree perform only write
    // queries (every query mutates persistent state).
    for (const char *name : {"hashmap", "ctree", "btree", "rbtree"}) {
        const auto &p = findProfile(name);
        EXPECT_GE(p.pmWrites, 2u) << name;
        EXPECT_EQ(p.networkDelayNs, 0) << name;
    }
}

TEST(Profiles, TreesArePointerChasers)
{
    for (const char *name : {"ctree", "btree", "rbtree"}) {
        const auto &p = findProfile(name);
        EXPECT_EQ(p.pmReadPattern, AccessPattern::Chase) << name;
        EXPECT_EQ(p.mlp, 1u) << name;
    }
}

TEST(Profiles, NetworkBoundKvStores)
{
    for (const char *name : {"echo", "memcached", "redis", "vacation"}) {
        EXPECT_GT(findProfile(name).networkDelayNs, 0) << name;
    }
}

TEST(Profiles, HashmapIsTheWriteStressor)
{
    // Section VII: hashmap stresses the proposal hardest — the lowest
    // data-write locality among the write-only benchmarks and extra
    // hot-metadata updates per query.
    const auto &hashmap = findProfile("hashmap");
    for (const char *tree : {"ctree", "btree", "rbtree"})
        EXPECT_LT(hashmap.writeRowLocality,
                  findProfile(tree).writeRowLocality);
    EXPECT_GE(hashmap.hotWrites, 2u);
}

TEST(Profiles, SplashAreFlopsWorkloads)
{
    for (const auto &p : splashProfiles()) {
        EXPECT_TRUE(p.flops) << p.name;
        EXPECT_GT(p.flopFraction, 0.0) << p.name;
        EXPECT_GE(p.gapMean, 40u) << p.name; // compute-dense
    }
}

TEST(Profiles, AllPersistentWorkloadsLog)
{
    for (const auto &name : allBenchmarkNames())
        EXPECT_TRUE(findProfile(name).atlasLogging) << name;
}

TEST(Profiles, UnknownNameDies)
{
    EXPECT_EXIT(findProfile("nosuchbench"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

} // namespace
} // namespace nvck
