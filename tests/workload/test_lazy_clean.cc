#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/synthetic.hh"

namespace nvck {
namespace {

AddressSpace
space()
{
    AddressSpace s;
    s.pmBytes = 512ull << 20;
    s.dramBytes = 512ull << 20;
    return s;
}

TEST(LazyClean, DataCleansLagTheWrites)
{
    // With cleanLagBlocks = L, the first data clean may only appear
    // after L data writes have been issued.
    QueryProfile p = findProfile("hashmap");
    p.cleanLagBlocks = 50;
    p.hotWrites = 0;
    SyntheticWorkload w(p, space(), 1, 3);

    unsigned data_writes = 0;
    std::set<Addr> logged;
    for (int i = 0; i < 30000; ++i) {
        const TraceOp op = w.next(0);
        if (op.kind == TraceOp::Kind::Store && op.isPm) {
            // Log stores hit the top-of-PM log region.
            if (op.addr < space().pmBase + (490ull << 20))
                ++data_writes;
        } else if (op.kind == TraceOp::Kind::Clean && op.isPm &&
                   op.addr < space().pmBase + (490ull << 20)) {
            // First data clean: at least L data writes must precede it.
            EXPECT_GE(data_writes, 50u);
            return;
        }
    }
    FAIL() << "no data clean observed";
}

TEST(LazyClean, EveryDataWriteIsEventuallyCleaned)
{
    QueryProfile p = findProfile("ycsb");
    p.cleanLagBlocks = 20;
    p.hotWrites = 0;
    p.writeRowLocality = 0.0; // distinct addresses for exact matching
    SyntheticWorkload w(p, space(), 1, 7);

    std::map<Addr, int> pending; // written, not yet cleaned
    unsigned writes_seen = 0;
    const Addr data_top = space().pmBase + (490ull << 20);
    for (int i = 0; i < 60000 && writes_seen < 300; ++i) {
        const TraceOp op = w.next(0);
        if (op.kind == TraceOp::Kind::Store && op.isPm &&
            op.addr < data_top) {
            ++pending[op.addr];
            ++writes_seen;
        } else if (op.kind == TraceOp::Kind::Clean && op.isPm &&
                   op.addr < data_top) {
            auto it = pending.find(op.addr);
            ASSERT_NE(it, pending.end())
                << "clean of a never-written block";
            if (--it->second == 0)
                pending.erase(it);
        }
    }
    // The in-flight window is bounded by the lag.
    EXPECT_LE(pending.size(), 21u);
}

TEST(HotWrites, HotBlocksRepeatWithinASmallSet)
{
    QueryProfile p = findProfile("btree");
    p.pmWrites = 0; // isolate the hot stream
    p.atlasLogging = false;
    SyntheticWorkload w(p, space(), 1, 9);

    std::set<Addr> hot_addrs;
    unsigned hot_stores = 0;
    for (int i = 0; i < 20000 && hot_stores < 100; ++i) {
        const TraceOp op = w.next(0);
        if (op.kind == TraceOp::Kind::Store && op.isPm) {
            hot_addrs.insert(op.addr);
            ++hot_stores;
        }
    }
    ASSERT_GE(hot_stores, 100u);
    EXPECT_LE(hot_addrs.size(), 8u); // the per-core hot set
}

TEST(HotWrites, HotBlocksAreLoggedWhenAtlasOn)
{
    QueryProfile p = findProfile("water");
    p.pmWrites = 0;
    SyntheticWorkload w(p, space(), 1, 11);
    // With logging on, hot stores alternate with log stores: stores to
    // the log region must appear.
    const Addr log_floor = space().pmBase + (490ull << 20);
    bool saw_log = false, saw_hot = false;
    for (int i = 0; i < 5000; ++i) {
        const TraceOp op = w.next(0);
        if (op.kind != TraceOp::Kind::Store || !op.isPm)
            continue;
        (op.addr >= log_floor ? saw_log : saw_hot) = true;
        if (saw_log && saw_hot)
            break;
    }
    EXPECT_TRUE(saw_log);
    EXPECT_TRUE(saw_hot);
}

TEST(HotWrites, OccasionalHotCleanEmitted)
{
    QueryProfile p = findProfile("barnes");
    SyntheticWorkload w(p, space(), 1, 13);
    const Addr data_top = space().pmBase + (490ull << 20);
    std::set<Addr> hot_candidates;
    // Collect the hot set first (stores repeating quickly).
    std::map<Addr, int> counts;
    bool hot_cleaned = false;
    for (int i = 0; i < 300000 && !hot_cleaned; ++i) {
        const TraceOp op = w.next(0);
        if (op.kind == TraceOp::Kind::Store && op.isPm &&
            op.addr < data_top) {
            if (++counts[op.addr] > 3)
                hot_candidates.insert(op.addr);
        }
        if (op.kind == TraceOp::Kind::Clean && op.isPm &&
            hot_candidates.count(op.addr))
            hot_cleaned = true;
    }
    EXPECT_TRUE(hot_cleaned);
}

} // namespace
} // namespace nvck
