#include <gtest/gtest.h>

#include <map>

#include "workload/synthetic.hh"

namespace nvck {
namespace {

AddressSpace
smallSpace()
{
    AddressSpace s;
    s.pmBytes = 512ull << 20;
    s.dramBytes = 512ull << 20;
    return s;
}

TEST(Synthetic, StreamsAreDeterministic)
{
    const auto space = smallSpace();
    auto a = makeWorkload("hashmap", space, 4, 42);
    auto b = makeWorkload("hashmap", space, 4, 42);
    for (int i = 0; i < 500; ++i) {
        const TraceOp oa = a->next(0);
        const TraceOp ob = b->next(0);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
    }
}

TEST(Synthetic, CoresGetIndependentStreams)
{
    auto w = makeWorkload("hashmap", smallSpace(), 4, 1);
    // Same op index, different cores: addresses should diverge.
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        const TraceOp a = w->next(0);
        const TraceOp b = w->next(1);
        if (a.addr == b.addr && a.addr != 0)
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Synthetic, AddressesStayInRegions)
{
    const auto space = smallSpace();
    auto w = makeWorkload("tpcc", space, 4, 3);
    for (int i = 0; i < 5000; ++i) {
        const TraceOp op = w->next(i % 4);
        if (op.kind == TraceOp::Kind::Idle ||
            op.kind == TraceOp::Kind::Fence)
            continue;
        if (op.isPm) {
            EXPECT_GE(op.addr, space.pmBase);
            EXPECT_LT(op.addr, space.pmBase + space.pmBytes);
        } else {
            EXPECT_GE(op.addr, space.dramBase);
            EXPECT_LT(op.addr, space.dramBase + space.dramBytes);
        }
    }
}

TEST(Synthetic, AtlasDisciplinePerWrite)
{
    // Every PM update (data or hot metadata) is undo-logged: a log
    // store immediately followed by clean+fence. Data blocks are
    // cleaned lazily, so early in the stream cleans ~= log stores =
    // half of all PM stores.
    auto w = makeWorkload("hashmap", smallSpace(), 1, 5);
    unsigned stores = 0, cleans = 0, fences = 0;
    for (int i = 0; i < 10000; ++i) {
        const TraceOp op = w->next(0);
        switch (op.kind) {
          case TraceOp::Kind::Store: stores += op.isPm; break;
          case TraceOp::Kind::Clean: cleans += op.isPm; break;
          case TraceOp::Kind::Fence: ++fences; break;
          default: break;
        }
    }
    EXPECT_NEAR(static_cast<double>(cleans), stores / 2.0,
                stores * 0.05);
    EXPECT_NEAR(static_cast<double>(fences), cleans, cleans * 0.05);
}

TEST(Synthetic, LogWritesAreSequential)
{
    auto w = makeWorkload("echo", smallSpace(), 1, 9);
    // Collect PM store addresses; log stores are recognizable as a
    // strictly +64 sequence within the log region (top of PM).
    std::vector<Addr> pm_stores;
    for (int i = 0; i < 4000 && pm_stores.size() < 60; ++i) {
        const TraceOp op = w->next(0);
        if (op.kind == TraceOp::Kind::Store && op.isPm)
            pm_stores.push_back(op.addr);
    }
    ASSERT_GE(pm_stores.size(), 20u);
    // Stores alternate log, data, log, data, ... (1 write per query).
    unsigned sequential = 0;
    for (std::size_t i = 2; i < pm_stores.size(); i += 2)
        if (pm_stores[i] == pm_stores[i - 2] + blockBytes)
            ++sequential;
    EXPECT_GT(sequential, pm_stores.size() / 2 - 5);
}

TEST(Synthetic, NetworkWorkloadsEmitIdle)
{
    auto w = makeWorkload("memcached", smallSpace(), 1, 11);
    bool saw_idle = false;
    for (int i = 0; i < 200; ++i) {
        const TraceOp op = w->next(0);
        if (op.kind == TraceOp::Kind::Idle) {
            saw_idle = true;
            EXPECT_GT(op.idleNs, 0.0);
        }
    }
    EXPECT_TRUE(saw_idle);
}

TEST(Synthetic, WriteLocalityFormsChains)
{
    // btree allocates nodes from an arena: with writeRowLocality 0.85,
    // most consecutive data writes land on adjacent blocks.
    auto w = makeWorkload("btree", smallSpace(), 1, 13);
    std::vector<Addr> log_or_data;
    for (int i = 0; i < 60000 && log_or_data.size() < 400; ++i) {
        const TraceOp op = w->next(0);
        if (op.kind == TraceOp::Kind::Store && op.isPm)
            log_or_data.push_back(op.addr);
    }
    // Reconstruct the data-store stream: drop addresses in the log
    // region (top of PM) and hot-metadata repeats.
    const auto space = smallSpace();
    std::vector<Addr> data;
    std::map<Addr, int> seen;
    for (Addr a : log_or_data) {
        if (a >= space.pmBase + space.pmBytes - 80ull * 1024 * 1024)
            continue; // log region
        if (++seen[a] > 1)
            continue; // hot metadata rewrites
        data.push_back(a);
    }
    ASSERT_GE(data.size(), 50u);
    unsigned adjacent = 0;
    for (std::size_t i = 1; i < data.size(); ++i)
        if (data[i] == data[i - 1] + blockBytes)
            ++adjacent;
    EXPECT_GT(adjacent, data.size() / 2);
}

TEST(Synthetic, SequentialPatternAdvances)
{
    auto w = makeWorkload("ocean", smallSpace(), 1, 17);
    Addr prev = 0;
    bool have_prev = false;
    unsigned increments = 0, loads = 0;
    for (int i = 0; i < 2000 && loads < 100; ++i) {
        const TraceOp op = w->next(0);
        if (op.kind != TraceOp::Kind::Load || !op.isPm)
            continue;
        ++loads;
        if (have_prev && op.addr == prev + blockBytes)
            ++increments;
        prev = op.addr;
        have_prev = true;
    }
    EXPECT_GT(increments, loads / 2);
}

} // namespace
} // namespace nvck
