#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/synthetic.hh"
#include "workload/trace_file.hh"

namespace nvck {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "nvck_trace_" + tag +
           ".bin";
}

AddressSpace
space()
{
    AddressSpace s;
    s.pmBytes = 512ull << 20;
    s.dramBytes = 256ull << 20;
    return s;
}

TEST(TraceFile, RoundTripPreservesOps)
{
    const std::string path = tempPath("roundtrip");
    auto source = makeWorkload("tpcc", space(), 2, 5);
    TraceWriter::capture(*source, path, 2, 500);

    // Regenerate the identical stream and compare against replay.
    auto reference = makeWorkload("tpcc", space(), 2, 5);
    TraceReplayWorkload replay(path, 8);
    ASSERT_EQ(replay.cores(), 2u);
    EXPECT_EQ(replay.totalOps(), 1000u);
    for (unsigned core = 0; core < 2; ++core) {
        for (int i = 0; i < 500; ++i) {
            const TraceOp want = reference->next(core);
            const TraceOp got = replay.next(core);
            ASSERT_EQ(static_cast<int>(got.kind),
                      static_cast<int>(want.kind))
                << "core " << core << " op " << i;
            ASSERT_EQ(got.addr, want.addr);
            ASSERT_EQ(got.isPm, want.isPm);
            ASSERT_EQ(got.gap, std::min(want.gap, 0xFFFFu));
            ASSERT_NEAR(got.idleNs, want.idleNs, 0.0625);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoopsForever)
{
    const std::string path = tempPath("loop");
    auto source = makeWorkload("echo", space(), 1, 9);
    TraceWriter::capture(*source, path, 1, 50);

    TraceReplayWorkload replay(path);
    const TraceOp first = replay.next(0);
    for (int i = 0; i < 49; ++i)
        replay.next(0);
    const TraceOp wrapped = replay.next(0);
    EXPECT_EQ(wrapped.addr, first.addr);
    EXPECT_EQ(static_cast<int>(wrapped.kind),
              static_cast<int>(first.kind));
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsGarbageFile)
{
    const std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReplayWorkload bad(path),
                ::testing::ExitedWithCode(1), "not a nvchipkill trace");
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReplayWorkload bad("/nonexistent/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFile, WriterCountsRecords)
{
    const std::string path = tempPath("count");
    {
        TraceWriter writer(path, 1);
        TraceOp op;
        op.kind = TraceOp::Kind::Load;
        op.addr = 0x1234;
        for (int i = 0; i < 7; ++i)
            writer.append(0, op);
        EXPECT_EQ(writer.records(), 7u);
    }
    TraceReplayWorkload replay(path);
    EXPECT_EQ(replay.totalOps(), 7u);
    std::remove(path.c_str());
}

} // namespace
} // namespace nvck
