/**
 * @file
 * Properties of the persist-order oracle behind the whole-system crash
 * campaign, plus the stale-persist-ack ledger it leans on: an acked
 * (settled) persist must read back NEW-only, an unsettled write may
 * resolve to any acked value in its burst chain but never to garbage,
 * and the System's orphaned-ack accounting absorbs exactly the acks a
 * power cut stranded — one short of that aborts (death test).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "chipkill/schemes.hh"
#include "sim/configs.hh"
#include "sim/syscrash.hh"
#include "sim/system.hh"

namespace nvck {

/** Test seam: drives the private persist bookkeeping directly. */
class SystemTestPeer
{
  public:
    static void
    issued(System &sys, unsigned core)
    {
        sys.persistIssued(core);
    }
    static void
    done(System &sys, unsigned core, Tick when)
    {
        sys.persistDone(core, when);
    }
};

namespace {

using Verdict = PersistOracle::Verdict;

std::array<std::uint8_t, blockBytes>
patterned(std::uint8_t fill)
{
    std::array<std::uint8_t, blockBytes> v;
    for (unsigned i = 0; i < blockBytes; ++i)
        v[i] = static_cast<std::uint8_t>(fill ^ i);
    return v;
}

TEST(PersistOracle, SettledBlockMustReadBackExactly)
{
    PersistOracle oracle(4);
    const auto v0 = patterned(0x11);
    oracle.setBaseline(1, v0.data());

    EXPECT_EQ(oracle.classify(1, v0.data(), false), Verdict::SettledOk);
    auto garbled = v0;
    garbled[7] ^= 0x20;
    EXPECT_EQ(oracle.classify(1, garbled.data(), false),
              Verdict::Violation);
    // A reported UE is legal even on an untouched block (collateral).
    EXPECT_EQ(oracle.classify(1, v0.data(), true), Verdict::ReportedUe);
}

TEST(PersistOracle, AckedPersistIsNewOnly)
{
    PersistOracle oracle(2);
    const auto v0 = patterned(0x00);
    const auto v1 = patterned(0xa5);
    oracle.setBaseline(0, v0.data());
    oracle.recordBurst(0, v1.data());
    oracle.recordDrain(0);

    // The drain settled v1: the pre-write value is now a rollback of a
    // durable write — the exact failure chipkill recovery must never
    // produce.
    EXPECT_FALSE(oracle.pending(0));
    EXPECT_EQ(oracle.classify(0, v1.data(), false), Verdict::SettledOk);
    EXPECT_EQ(oracle.classify(0, v0.data(), false),
              Verdict::Violation);
}

TEST(PersistOracle, PendingWriteResolvesOldNewOrUeNeverGarbage)
{
    PersistOracle oracle(2);
    const auto v0 = patterned(0x0f);
    const auto v1 = patterned(0xf0);
    oracle.setBaseline(0, v0.data());
    oracle.recordBurst(0, v1.data());

    EXPECT_TRUE(oracle.pending(0));
    EXPECT_EQ(oracle.pendingCount(), 1u);
    EXPECT_EQ(oracle.classify(0, v1.data(), false), Verdict::TornNew);
    EXPECT_EQ(oracle.classify(0, v0.data(), false), Verdict::TornOld);
    EXPECT_EQ(oracle.classify(0, v0.data(), true),
              Verdict::ReportedUe);
    auto mixed = v0;
    std::memcpy(mixed.data(), v1.data(), blockBytes / 2);
    ASSERT_NE(0, std::memcmp(mixed.data(), v0.data(), blockBytes));
    ASSERT_NE(0, std::memcmp(mixed.data(), v1.data(), blockBytes));
    EXPECT_EQ(oracle.classify(0, mixed.data(), false),
              Verdict::Violation);
}

TEST(PersistOracle, CoalescedChainAdmitsEveryAckedValue)
{
    // Three bursts coalesce in one EUR register: the cut may strand
    // the block at the settled value, at the latest intent, or — via
    // RS/VLEW resolution — at an earlier acked burst. All are acked
    // values the program wrote; only off-chain bytes are garbage.
    PersistOracle oracle(1);
    const auto v0 = patterned(0x01);
    const auto v1 = patterned(0x22);
    const auto v2 = patterned(0x44);
    const auto v3 = patterned(0x88);
    oracle.setBaseline(0, v0.data());
    oracle.recordBurst(0, v1.data());
    oracle.recordBurst(0, v2.data());
    oracle.recordBurst(0, v3.data());

    EXPECT_EQ(oracle.classify(0, v0.data(), false), Verdict::TornOld);
    EXPECT_EQ(oracle.classify(0, v1.data(), false),
              Verdict::TornIntermediate);
    EXPECT_EQ(oracle.classify(0, v2.data(), false),
              Verdict::TornIntermediate);
    EXPECT_EQ(oracle.classify(0, v3.data(), false), Verdict::TornNew);
    EXPECT_EQ(0, std::memcmp(oracle.latest(0).data(), v3.data(),
                             blockBytes));

    // Settling collapses the chain onto the last acked value.
    oracle.recordDrain(0);
    EXPECT_FALSE(oracle.pending(0));
    EXPECT_EQ(oracle.classify(0, v3.data(), false), Verdict::SettledOk);
    EXPECT_EQ(oracle.classify(0, v1.data(), false),
              Verdict::Violation);
}

TEST(PersistOracle, RandomizedChainsNeverMisclassify)
{
    Rng rng(321);
    PersistOracle oracle(8);
    std::array<std::array<std::uint8_t, blockBytes>, 8> settled;
    for (unsigned b = 0; b < 8; ++b) {
        for (auto &byte : settled[b])
            byte = static_cast<std::uint8_t>(rng.next());
        oracle.setBaseline(b, settled[b].data());
    }
    std::array<std::vector<std::array<std::uint8_t, blockBytes>>, 8>
        chains;
    for (unsigned step = 0; step < 2000; ++step) {
        const unsigned b = static_cast<unsigned>(rng.below(8));
        if (!chains[b].empty() && rng.chance(0.3)) {
            oracle.recordDrain(b);
            settled[b] = chains[b].back();
            chains[b].clear();
        } else {
            std::array<std::uint8_t, blockBytes> v;
            for (auto &byte : v)
                byte = static_cast<std::uint8_t>(rng.next());
            oracle.recordBurst(b, v.data());
            chains[b].push_back(v);
        }

        // Invariants after every step, on a random block.
        const unsigned q = static_cast<unsigned>(rng.below(8));
        EXPECT_EQ(oracle.pending(q), !chains[q].empty());
        const auto settled_verdict =
            oracle.classify(q, settled[q].data(), false);
        EXPECT_EQ(settled_verdict, chains[q].empty()
                                       ? Verdict::SettledOk
                                       : Verdict::TornOld);
        if (!chains[q].empty()) {
            EXPECT_EQ(oracle.classify(q, chains[q].back().data(),
                                      false),
                      Verdict::TornNew);
        }
        auto garbage = settled[q];
        garbage[step % blockBytes] ^= 0xff;
        const auto garbage_verdict =
            oracle.classify(q, garbage.data(), false);
        EXPECT_TRUE(garbage_verdict == Verdict::Violation ||
                    garbage_verdict == Verdict::TornNew ||
                    garbage_verdict == Verdict::TornIntermediate);
        EXPECT_EQ(oracle.classify(q, garbage.data(), true),
                  Verdict::ReportedUe);
    }
}

SystemConfig
tinyConfig()
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, proposalScheme(runtimeRberFor(PmTech::Reram)),
        "echo", 7);
    cfg.cores = 2;
    cfg.cache.cores = 2;
    return cfg;
}

TEST(StalePersistAcks, PowerFailStrandsExactlyTheInFlightAcks)
{
    System sys(tinyConfig());
    SystemTestPeer::issued(sys, 0);
    SystemTestPeer::issued(sys, 0);
    SystemTestPeer::issued(sys, 1);
    EXPECT_EQ(sys.pendingStaleAcks(), 0u);

    const PowerFailReport report = sys.powerFail();
    EXPECT_EQ(report.persistsInFlight, 3u);
    EXPECT_EQ(sys.pendingStaleAcks(), 3u);

    // Stranded completion chains resolve against the rebooted machine
    // and are absorbed by the ledger, regardless of core.
    SystemTestPeer::done(sys, 0, 10);
    SystemTestPeer::done(sys, 1, 20);
    SystemTestPeer::done(sys, 1, 30);
    EXPECT_EQ(sys.pendingStaleAcks(), 0u);
}

TEST(StalePersistAcksDeathTest, UnderflowAborts)
{
    // One more completion than the cut stranded is a bookkeeping bug:
    // the guard at persistDone() must abort, not wrap.
    System sys(tinyConfig());
    SystemTestPeer::issued(sys, 0);
    sys.powerFail();
    SystemTestPeer::done(sys, 0, 10);
    EXPECT_EQ(sys.pendingStaleAcks(), 0u);
    EXPECT_DEATH(SystemTestPeer::done(sys, 0, 20),
                 "persist underflow");
}

} // namespace
} // namespace nvck
