/**
 * @file
 * The randomized crash campaign end to end: the oracle must hold
 * (zero violations — no silent garbage, no rolled-back durable
 * writes) and the emitted table must be byte-identical for any worker
 * count at a fixed seed, the same determinism contract the figure
 * sweeps are locked to.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/threadpool.hh"
#include "sim/crash.hh"

namespace nvck {
namespace {

CrashCampaignConfig
smallCampaign()
{
    CrashCampaignConfig cfg;
    cfg.seed = 77;
    cfg.trials = 120;
    cfg.degradedTrials = 24;
    cfg.rankBlocks = 32;
    cfg.chunkTrials = 10;
    return cfg;
}

TEST(CrashCampaign, OracleHoldsAndTalliesAddUp)
{
    std::ostringstream os;
    SweepOptions opts;
    ThreadPool pool(2);
    opts.pool = &pool;
    const CrashCampaignConfig cfg = smallCampaign();
    const CrashCampaignTotals totals = crashCampaign(os, opts, cfg);

    EXPECT_EQ(totals.violations(), 0u);
    const CrashTally sum = totals.total();
    EXPECT_EQ(sum.trials, cfg.trials + cfg.degradedTrials);
    // Every trial's torn block resolved exactly one way.
    EXPECT_EQ(sum.tornOld + sum.tornNew + sum.tornUe, sum.trials);
    for (unsigned p = 0; p < numCrashPoints; ++p)
        EXPECT_EQ(totals.points[p].trials, cfg.trials / numCrashPoints)
            << crashPointName(static_cast<CrashPoint>(p));
    EXPECT_NE(os.str().find("crash point"), std::string::npos);
    // The verdict block moved to the shared bench-side reporter
    // (bench_common.hh); the campaign itself emits only the table.
    EXPECT_EQ(os.str().find("Oracle held"), std::string::npos);
}

TEST(CrashCampaign, OutputIsByteIdenticalAcrossWorkerCounts)
{
    const CrashCampaignConfig cfg = smallCampaign();
    std::string outputs[2];
    const unsigned workers[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        std::ostringstream os;
        SweepOptions opts;
        ThreadPool pool(workers[i]);
        opts.pool = &pool;
        crashCampaign(os, opts, cfg);
        outputs[i] = os.str();
    }
    EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(CrashCampaign, EveryTornShapeSettlesAtomically)
{
    // Drive the injector directly at each enumerated site so a single
    // failing shape is attributable without rerunning the campaign.
    Rng rng(11);
    PmRank rank(32);
    rank.initialize(rng);
    CrashInjector injector(rank);
    CrashTrialOptions topts;
    for (unsigned p = 0; p < numCrashPoints; ++p) {
        CrashTally tally;
        for (int t = 0; t < 40; ++t)
            tally += injector.runTrial(static_cast<CrashPoint>(p), rng,
                                       topts);
        EXPECT_EQ(tally.violations, 0u)
            << crashPointName(static_cast<CrashPoint>(p));
        EXPECT_EQ(tally.tornOld + tally.tornNew + tally.tornUe,
                  tally.trials);
    }
}

} // namespace
} // namespace nvck
