#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"

namespace nvck {
namespace {

RunControl
quickRun()
{
    RunControl rc;
    rc.warmup = nsToTicks(20000);
    rc.measure = nsToTicks(60000);
    rc.samplePeriod = nsToTicks(5000);
    return rc;
}

TEST(System, BaselineRunProducesProgress)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, bitErrorOnlyScheme(), "echo", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_LT(m.ipc, 16.0); // 4 cores x 4-wide upper bound
    EXPECT_GT(m.pmReads + m.pmWrites, 0u);
    EXPECT_GT(m.dramReads, 0u);
    EXPECT_EQ(m.vlewFetches, 0u);   // baseline has no VLEW traffic
    EXPECT_EQ(m.oldDataFetches, 0u);
}

TEST(System, ProposalGeneratesEccTraffic)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Pcm, proposalScheme(2e-4), "hashmap", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    EXPECT_GT(m.pmWrites, 0u);
    // OMV hit rate should be high: hashmap cleans right after writing.
    EXPECT_GT(m.omvHitRate, 0.8);
    // C factor must be sane.
    EXPECT_GE(m.cFactor, 0.0);
    EXPECT_LE(m.cFactor, 1.0);
}

TEST(System, VlewFetchInjectionScalesWithProbability)
{
    SchemeTiming scheme = proposalScheme(2e-4);
    scheme.vlewFetchProb = 0.05; // exaggerate for a short run
    SystemConfig cfg =
        SystemConfig::make(PmTech::Reram, scheme, "ycsb", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    EXPECT_GT(m.vlewFetches, 0u);
    EXPECT_GT(m.overheadReads, m.vlewFetches * 30);
}

TEST(System, NaiveVlewFetchesOldDataOnEveryPmWrite)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, naiveVlewScheme(2e-4), "hashmap", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    EXPECT_GT(m.oldDataFetches, 0u);
    // Every PM write must fetch old data first.
    EXPECT_NEAR(static_cast<double>(m.oldDataFetches),
                static_cast<double>(m.pmWrites),
                0.25 * static_cast<double>(m.pmWrites) + 8.0);
}

TEST(System, ProposalOldFetchesOnlyOnOmvMiss)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, proposalScheme(7e-5), "btree", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    // OMV mostly hits, so old-data fetches are far rarer than writes.
    EXPECT_LT(static_cast<double>(m.oldDataFetches),
              0.3 * static_cast<double>(m.pmWrites) + 8.0);
}

TEST(System, DirtyPmOccupancyIsSmall)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, proposalScheme(7e-5), "memcached", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    // Fig 10: dirty PM blocks occupy a small fraction of the hierarchy
    // because the workloads clean aggressively.
    EXPECT_LT(m.dirtyPmFraction, 0.25);
}

TEST(System, DeterministicAcrossRuns)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Pcm, proposalScheme(2e-4), "tpcc", 7);
    const RunMetrics a = runOnce(cfg, quickRun());
    const RunMetrics b = runOnce(cfg, quickRun());
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.vlewFetches, b.vlewFetches);
}

TEST(System, FlopsMetricForSplash)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, bitErrorOnlyScheme(), "barnes", 1);
    const RunMetrics m = runOnce(cfg, quickRun());
    EXPECT_GT(m.mflops, 0.0);
    EXPECT_DOUBLE_EQ(m.perf, m.mflops);
}

TEST(System, WriteScaleSlowsWriteHeavyWorkload)
{
    SchemeTiming slow = bitErrorOnlyScheme();
    slow.pmWriteScale = 4.0;
    slow.pmWriteExtra = nsToTicks(20);
    SystemConfig fast_cfg = SystemConfig::make(
        PmTech::Pcm, bitErrorOnlyScheme(), "hashmap", 1);
    SystemConfig slow_cfg =
        SystemConfig::make(PmTech::Pcm, slow, "hashmap", 1);
    const RunMetrics fast_m = runOnce(fast_cfg, quickRun());
    const RunMetrics slow_m = runOnce(slow_cfg, quickRun());
    EXPECT_LT(slow_m.ipc, fast_m.ipc);
}

TEST(Experiment, ProposalTwoPassReportsC)
{
    RunControl rc = quickRun();
    const RunMetrics m = runProposal(PmTech::Reram, "echo", 1, rc);
    EXPECT_GT(m.cFactor, 0.0);
    EXPECT_EQ(m.tech, "ReRAM");
    EXPECT_EQ(m.scheme, proposalScheme(7e-5).name);
}

TEST(Experiment, ProposalOverheadIsBounded)
{
    // Smoke version of Fig 16/17: the proposal must land within a
    // plausible band of the baseline on a quick run.
    RunControl rc = quickRun();
    const RunMetrics base = runBaseline(PmTech::Reram, "echo", 1, rc);
    const RunMetrics prop = runProposal(PmTech::Reram, "echo", 1, rc);
    const double rel = prop.perf / base.perf;
    EXPECT_GT(rel, 0.6);
    EXPECT_LT(rel, 1.2);
}

} // namespace
} // namespace nvck
