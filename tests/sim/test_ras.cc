/**
 * @file
 * Online RAS engine: leaky-bucket ledger arithmetic, deterministic
 * threshold crossings, the live failover edge cases (kill with a
 * non-empty EUR, kill mid-patrol, double kill), bit-identity of the
 * incremental migration against the offline DegradedRank::takeOver,
 * and the lifecycle campaign's oracle + worker-count determinism.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>

#include "chipkill/schemes.hh"
#include "common/threadpool.hh"
#include "sim/ras.hh"

namespace nvck {
namespace {

// HealthLedger --------------------------------------------------------

TEST(RasLedger, IntegerDecayIsExact)
{
    RasConfig cfg;
    cfg.decayInterval = 100;
    cfg.decayStep = 4;
    HealthLedger ledger(2, 2, cfg);

    EXPECT_EQ(ledger.recordChip(0, 10, 0), 10u);
    EXPECT_EQ(ledger.chipLevel(0, 99), 10u);  // partial interval
    EXPECT_EQ(ledger.chipLevel(0, 100), 6u);  // one whole interval
    EXPECT_EQ(ledger.chipLevel(0, 250), 2u);  // two whole intervals
    EXPECT_EQ(ledger.chipLevel(0, 300), 0u);  // fully drained
    EXPECT_EQ(ledger.chipLevel(0, 1u << 30), 0u); // never wraps

    // Recording re-anchors the leak clock to whole intervals only.
    EXPECT_EQ(ledger.recordChip(0, 5, 150), 11u); // 10 - 4 + 5
    EXPECT_EQ(ledger.chipLevel(0, 199), 11u);
    EXPECT_EQ(ledger.chipLevel(0, 200), 7u);

    // The untouched chip and the row buckets are independent.
    EXPECT_EQ(ledger.chipLevel(1, 500), 0u);
    EXPECT_EQ(ledger.recordRow(1, 9, 40), 9u);
    ledger.resetRow(1);
    EXPECT_EQ(ledger.rowLevel(1, 40), 0u);
}

TEST(RasLedger, ThresholdCrossingIsDeterministicAcrossSubstreams)
{
    RasConfig cfg;
    cfg.decayInterval = 50;
    cfg.decayStep = 1;
    const std::uint64_t threshold = 30;

    // The same substream must produce the same event history and
    // therefore the same crossing step, independent of the sibling
    // streams drawn in between (the parallel-campaign contract).
    const Rng base(2018);
    int crossings[2] = {-1, -1};
    for (int run = 0; run < 2; ++run) {
        Rng sibling = base.substream(run == 0 ? 3 : 9);
        (void)sibling.next();
        Rng rng = base.substream(7);
        HealthLedger ledger(9, 4, cfg);
        for (int step = 0; step < 400; ++step) {
            const Tick now = static_cast<Tick>(step) * 10;
            const unsigned chip = static_cast<unsigned>(rng.below(9));
            const std::uint64_t w = 1 + rng.below(3);
            if (ledger.recordChip(chip, w, now) >= threshold) {
                crossings[run] = step;
                break;
            }
        }
    }
    EXPECT_GE(crossings[0], 0);
    EXPECT_EQ(crossings[0], crossings[1]);
}

// Online migration vs offline takeOver -------------------------------

TEST(RasFailover, MatchesOfflineTakeOverBitIdentical)
{
    Rng rng(55);
    PmRank rank(128);
    rank.initialize(rng);
    // Correctable wear so the migration reads exercise correction.
    for (int i = 0; i < 12; ++i) {
        rank.corruptByte(static_cast<unsigned>(rng.below(rank.chips())),
                         static_cast<unsigned>(rng.below(rank.blocks())),
                         static_cast<unsigned>(rng.below(chipBeatBytes)),
                         static_cast<std::uint8_t>(1u << rng.below(8)));
    }
    rank.failChip(3, rng);

    const DegradedSnapshot offline =
        DegradedRank::takeOver(rank, 3).snapshot();

    OnlineFailover online(rank, 3, 2);
    unsigned steps = 0;
    while (!online.done()) {
        // Deliberately not span-aligned: partial spans must compose.
        EXPECT_GT(online.step(17), 0u);
        ++steps;
    }
    EXPECT_EQ(online.watermark(), rank.blocks());
    EXPECT_GE(steps, rank.blocks() / 17);
    EXPECT_EQ(online.poisonedBlocks(), 0u);

    const DegradedSnapshot live = online.degraded().snapshot();
    EXPECT_EQ(live.store, offline.store);
    EXPECT_EQ(live.golden, offline.golden);
    EXPECT_EQ(live.poisonedVlew, offline.poisonedVlew);
    ASSERT_EQ(live.codeStore.size(), offline.codeStore.size());
    for (std::size_t v = 0; v < live.codeStore.size(); ++v) {
        EXPECT_TRUE(live.codeStore[v] == offline.codeStore[v]) << v;
        EXPECT_TRUE(live.goldenCode[v] == offline.goldenCode[v]) << v;
    }
}

// Live-system edge cases ----------------------------------------------

/** A booted System + mirrored rank, shaped like one campaign trial. */
struct LiveRig
{
    SystemConfig cfg;
    System sys;
    PmRank rank;
    PersistOracle oracle;
    RasMirror mirror;

    static SystemConfig
    makeCfg(unsigned blocks, std::uint64_t seed)
    {
        SystemConfig cfg = SystemConfig::make(
            PmTech::Reram, proposalScheme(runtimeRberFor(PmTech::Reram)),
            "echo", seed | 1);
        cfg.cores = 2;
        cfg.cache.cores = 2;
        cfg.cache.l1Bytes = 8 * 1024;
        cfg.cache.llcBytes = 64 * 1024;
        cfg.cache.llcWays = 8;
        cfg.mem.dram.banks = 4;
        cfg.mem.pm.banks = 4;
        cfg.mem.writeMaxAge = nsToTicks(400);
        cfg.mem.writeIdleBurst = 4;
        cfg.mem.writeDrainHigh = 24;
        cfg.mem.writeDrainLow = 8;
        cfg.space.pmBase = 0;
        cfg.space.pmBytes =
            static_cast<std::uint64_t>(blocks) * blockBytes;
        cfg.space.dramBytes = 1u << 20;
        return cfg;
    }

    static PmRank
    makeRank(unsigned blocks, std::uint64_t seed)
    {
        Rng rng(seed);
        PmRank rank(blocks);
        rank.initialize(rng);
        return rank;
    }

    LiveRig(unsigned blocks, std::uint64_t seed,
            const RasConfig &ras = RasConfig{})
        : cfg(makeCfg(blocks, seed)),
          sys(cfg,
              std::make_unique<CampaignWorkload>(cfg.space, 2, seed + 1)),
          rank(makeRank(blocks, seed + 2)), oracle(blocks),
          mirror(sys, rank, oracle, ras, 2, seed + 3)
    {
        std::uint8_t buf[blockBytes];
        for (unsigned b = 0; b < blocks; ++b) {
            rank.goldenBlock(b, buf);
            oracle.setBaseline(b, buf);
        }
        mirror.engine().start();
        sys.start();
    }
};

TEST(RasFailover, KillWithPendingEurDrainsBeforeMigration)
{
    LiveRig rig(256, 9001);

    // Run until demand writes have coalesced code deltas in the EUR.
    Tick t = 0;
    while (t < nsToTicks(16000) &&
           rig.sys.memory().eurState().pendingTotal() == 0) {
        t += nsToTicks(50);
        rig.sys.runUntil(t);
    }
    ASSERT_GT(rig.sys.memory().eurState().pendingTotal(), 0u);

    // Cross the kill threshold mid-coalesce; failover must retire the
    // in-flight registers through the row-close path before migrating.
    rig.mirror.engine().noteChipErrors(3, 1000);
    rig.sys.runUntil(t + nsToTicks(12000));

    EXPECT_TRUE(rig.mirror.engaged());
    EXPECT_TRUE(rig.mirror.completed());
    EXPECT_EQ(rig.mirror.engine().state(), RasState::Degraded);
    EXPECT_EQ(rig.mirror.engine().killedChip(), 3u);
    EXPECT_GT(rig.mirror.engine().stats().drainedAtFailover, 0u);
    EXPECT_EQ(rig.mirror.engine().watermark(), rig.rank.blocks());

    RasTally tally;
    rig.mirror.finalCheck(tally);
    EXPECT_EQ(tally.sdc, 0u);
    EXPECT_EQ(tally.lostDurable, 0u);
    EXPECT_EQ(tally.ue, 0u);
}

TEST(RasFailover, KillDuringPatrolBurstDropsItsCompletion)
{
    LiveRig rig(256, 4242);

    // Catch a patrol burst with reads still in flight.
    Tick t = 0;
    while (t < nsToTicks(30000) &&
           rig.mirror.engine().patrolInFlight() == 0) {
        t += nsToTicks(5);
        rig.sys.runUntil(t);
    }
    ASSERT_GT(rig.mirror.engine().patrolInFlight(), 0u);

    rig.mirror.engine().noteChipErrors(1, 1000);
    rig.sys.runUntil(t + nsToTicks(12000));

    EXPECT_TRUE(rig.mirror.completed());
    // The in-flight burst's span now belongs to the failover path; its
    // completion must be dropped, not scrubbed against the dead layout.
    EXPECT_GE(rig.mirror.engine().stats().patrolDropped, 1u);

    RasTally tally;
    rig.mirror.finalCheck(tally);
    EXPECT_EQ(tally.sdc + tally.lostDurable + tally.ue, 0u);
}

TEST(RasFailover, DoubleKillReportsUnrecoverable)
{
    LiveRig rig(256, 777);
    rig.sys.runUntil(nsToTicks(500));
    rig.mirror.engine().noteChipErrors(2, 1000);
    rig.sys.runUntil(nsToTicks(14000));
    ASSERT_TRUE(rig.mirror.completed());

    // A second chip crossing after failover exceeds the RS budget:
    // the engine must report, not assert.
    rig.mirror.engine().noteChipErrors(6, 1000);
    EXPECT_EQ(rig.mirror.engine().state(), RasState::Unrecoverable);
    EXPECT_EQ(rig.mirror.engine().stats().doubleKills, 1u);
    EXPECT_TRUE(rig.mirror.unrecoverable());

    // Evidence for the already-dead chip stays ignored.
    rig.mirror.engine().noteChipErrors(2, 1000);
    EXPECT_EQ(rig.mirror.engine().stats().doubleKills, 1u);
}

// Campaign ------------------------------------------------------------

RasCampaignConfig
smallCampaign()
{
    RasCampaignConfig cfg;
    cfg.seed = 91;
    cfg.trials = 16;
    cfg.chunkTrials = 2;
    cfg.trial.rankBlocks = 256;
    cfg.trial.horizon = nsToTicks(12000);
    return cfg;
}

TEST(RasCampaign, LifecycleOracleHoldsAndTalliesAddUp)
{
    std::ostringstream os;
    SweepOptions opts;
    ThreadPool pool(2);
    opts.pool = &pool;
    const RasCampaignConfig cfg = smallCampaign();
    const RasTotals totals = rasCampaign(os, opts, cfg);

    EXPECT_EQ(totals.violations(), 0u);
    const RasTally sum = totals.total();
    EXPECT_EQ(sum.trials, cfg.trials);
    EXPECT_GT(sum.patrolBursts, 0u);
    EXPECT_GT(sum.demandWrites, 0u);
    // Every chip-kill trial detected its kill and finished migrating.
    const RasTally &reram_kill =
        totals.cells[0][static_cast<unsigned>(FaultPlan::ChipKill)];
    EXPECT_EQ(reram_kill.failovers, reram_kill.trials);
    EXPECT_NE(os.str().find("chip-kill"), std::string::npos);
}

TEST(RasCampaign, OutputIsByteIdenticalAcrossWorkerCounts)
{
    const RasCampaignConfig cfg = smallCampaign();
    std::string outputs[2];
    const unsigned workers[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        std::ostringstream os;
        SweepOptions opts;
        ThreadPool pool(workers[i]);
        opts.pool = &pool;
        rasCampaign(os, opts, cfg);
        outputs[i] = os.str();
    }
    EXPECT_EQ(outputs[0], outputs[1]);
}

// Env knobs -----------------------------------------------------------

TEST(RasEnv, FromEnvOverridesKnobs)
{
    ::setenv("NVCK_RAS_PATROL", "250", 1);
    ::setenv("NVCK_RAS_THRESHOLD", "99", 1);
    ::setenv("NVCK_RAS_DECAY", "4000", 1);
    const RasConfig cfg = RasConfig::fromEnv();
    EXPECT_EQ(cfg.patrolInterval, nsToTicks(250));
    EXPECT_EQ(cfg.killThreshold, 99u);
    EXPECT_EQ(cfg.decayInterval, nsToTicks(4000));
    ::unsetenv("NVCK_RAS_PATROL");
    ::unsetenv("NVCK_RAS_THRESHOLD");
    ::unsetenv("NVCK_RAS_DECAY");

    const RasConfig defaults = RasConfig::fromEnv();
    EXPECT_EQ(defaults.killThreshold, RasConfig{}.killThreshold);
    EXPECT_EQ(defaults.patrolInterval, RasConfig{}.patrolInterval);
}

} // namespace
} // namespace nvck
