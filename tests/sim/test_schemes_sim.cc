#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace nvck {
namespace {

RunControl
quick()
{
    RunControl rc;
    rc.warmup = nsToTicks(20000);
    rc.measure = nsToTicks(60000);
    return rc;
}

TEST(SimSchemes, PcmBaselineIsSlowerOnMemoryBoundWork)
{
    // Tree chases are read-latency bound: PCM's 250ns tRCD must cost
    // IPC relative to ReRAM's 120ns.
    const auto reram = runBaseline(PmTech::Reram, "btree", 1, quick());
    const auto pcm = runBaseline(PmTech::Pcm, "btree", 1, quick());
    EXPECT_LT(pcm.perf, reram.perf);
}

TEST(SimSchemes, NaiveVlewWorseThanProposal)
{
    const RunControl rc = quick();
    const auto base = runBaseline(PmTech::Pcm, "hashmap", 1, rc);
    const auto prop = runProposal(PmTech::Pcm, "hashmap", 1, rc);
    SchemeTiming naive = naiveVlewScheme(runtimeRberFor(PmTech::Pcm));
    applyCFactor(naive, 1.0);
    const auto naive_m = runOnce(
        SystemConfig::make(PmTech::Pcm, naive, "hashmap", 1), rc);
    EXPECT_LT(naive_m.perf, prop.perf);
    EXPECT_LT(naive_m.perf, base.perf);
    EXPECT_GT(naive_m.oldDataFetches, prop.oldDataFetches);
}

TEST(SimSchemes, GapOverrideChangesIntensity)
{
    auto cfg = SystemConfig::make(PmTech::Reram, bitErrorOnlyScheme(),
                                  "ycsb", 1);
    const auto normal = runOnce(cfg, quick());
    cfg.gapOverride = 50; // much denser memory traffic
    const auto dense = runOnce(cfg, quick());
    EXPECT_GT(dense.pmReads, 2 * normal.pmReads);
}

TEST(SimSchemes, CharacterizationPassMeasuresStableC)
{
    // The same config must measure the same C (determinism), and C
    // must be in (0, 1] whenever EUR is on and writes flow.
    const auto a = runOnce(
        SystemConfig::make(PmTech::Reram, proposalScheme(7e-5),
                           "btree", 3),
        quick());
    const auto b = runOnce(
        SystemConfig::make(PmTech::Reram, proposalScheme(7e-5),
                           "btree", 3),
        quick());
    EXPECT_DOUBLE_EQ(a.cFactor, b.cFactor);
    EXPECT_GT(a.cFactor, 0.0);
    EXPECT_LE(a.cFactor, 1.0);
}

TEST(SimSchemes, SeedChangesStreamButNotRegime)
{
    const auto a = runBaseline(PmTech::Reram, "tpcc", 1, quick());
    const auto b = runBaseline(PmTech::Reram, "tpcc", 99, quick());
    EXPECT_NE(a.pmReads, b.pmReads);
    // Same regime: IPC within 20%.
    EXPECT_NEAR(a.perf, b.perf, 0.2 * a.perf);
}

TEST(SimSchemes, AllWorkloadsRunUnderBothTechs)
{
    // Smoke coverage: every benchmark completes a short run on both
    // technologies without tripping any internal assertion.
    RunControl rc;
    rc.warmup = nsToTicks(5000);
    rc.measure = nsToTicks(15000);
    for (const auto &name : allBenchmarkNames()) {
        for (PmTech tech : {PmTech::Reram, PmTech::Pcm}) {
            const auto m = runBaseline(tech, name, 1, rc);
            EXPECT_GE(m.perf, 0.0) << name;
        }
    }
}

} // namespace
} // namespace nvck
