/**
 * @file
 * Hot-spare subsystem: span-paced spare rebuild bit-identity against
 * the never-failed rank, repair/migrate-back restoring the exact
 * pre-failure image, the spare-loss fallback to degraded failover
 * under live traffic with no lost durable write, and the hot-sparing
 * campaign's oracle + worker-count determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "chipkill/schemes.hh"
#include "common/threadpool.hh"
#include "sim/spare.hh"

namespace nvck {
namespace {

// SpareChip rebuild / migrate-back bit-identity ------------------------

void
expectSnapshotsEqual(const RankSnapshot &a, const RankSnapshot &b)
{
    EXPECT_EQ(a.chipStore, b.chipStore);
    EXPECT_EQ(a.goldenStore, b.goldenStore);
    EXPECT_EQ(a.stuckMask, b.stuckMask);
    EXPECT_EQ(a.stuckVal, b.stuckVal);
    EXPECT_EQ(a.disabled, b.disabled);
    EXPECT_EQ(a.poisoned, b.poisoned);
    ASSERT_EQ(a.codeStore.size(), b.codeStore.size());
    for (std::size_t c = 0; c < a.codeStore.size(); ++c) {
        EXPECT_TRUE(a.codeStore[c] == b.codeStore[c]) << c;
        EXPECT_TRUE(a.goldenCode[c] == b.goldenCode[c]) << c;
    }
}

TEST(SpareChip, RebuildRestoresNeverFailedImage)
{
    Rng rng(314);
    PmRank rank(128);
    rank.initialize(rng);
    const RankSnapshot before = rank.snapshot();

    // Correctable survivor wear: the pre-fill scrubs must vouch for
    // (and fix) these before the erasure fill trusts the survivors.
    // Chip 5 is about to die, so wear goes on the other lanes only.
    for (int i = 0; i < 10; ++i) {
        unsigned chip =
            static_cast<unsigned>(rng.below(rank.chips() - 1));
        if (chip >= 5)
            ++chip;
        rank.corruptByte(chip,
                         static_cast<unsigned>(rng.below(rank.blocks())),
                         static_cast<unsigned>(rng.below(chipBeatBytes)),
                         static_cast<std::uint8_t>(1u << rng.below(8)));
    }
    rank.failChip(5, rng);

    SpareChip spare(rank, 2);
    spare.beginRebuild(5);
    EXPECT_EQ(spare.state(), SpareState::Rebuilding);
    unsigned steps = 0;
    std::vector<int> survivors;
    while (!spare.rebuildDone()) {
        // Deliberately not span-aligned: rounding up must compose.
        EXPECT_GT(spare.rebuildStep(17, &survivors), 0u);
        EXPECT_EQ(survivors.size(), rank.chips());
        EXPECT_EQ(survivors[5], 0); // the dead lane is never scrubbed
        ++steps;
    }
    EXPECT_EQ(spare.state(), SpareState::Active);
    EXPECT_EQ(spare.watermark(), rank.blocks());
    EXPECT_GE(steps, rank.blocks() / 32);
    EXPECT_EQ(spare.poisonedBlocks(), 0u);
    // Distinct (chip, block, byte, bit) draws can collide and cancel;
    // with this seed all ten flips survive to be scrubbed.
    EXPECT_GE(spare.survivorBitsFixed(), 9u);

    // The rebuilt rank is bit-identical to one that never failed:
    // survivor wear scrubbed out, the dead lane erasure-filled, and
    // its VLEW code re-encoded.
    expectSnapshotsEqual(rank.snapshot(), before);
    EXPECT_TRUE(rank.isPristine());
}

TEST(SpareChip, MigrateBackRestoresNeverFailedImage)
{
    Rng rng(2718);
    PmRank rank(128);
    rank.initialize(rng);
    const RankSnapshot before = rank.snapshot();

    rank.failChip(2, rng);
    SpareChip spare(rank, 2);
    spare.beginRebuild(2);
    while (!spare.rebuildDone())
        spare.rebuildStep(64);
    ASSERT_EQ(spare.state(), SpareState::Active);

    // Latent wear accumulates on the spare while it carries the lane;
    // the copy-back must verify-and-correct, not copy it onto the
    // replacement device.
    for (int i = 0; i < 6; ++i) {
        rank.corruptByte(2,
                         static_cast<unsigned>(rng.below(rank.blocks())),
                         static_cast<unsigned>(rng.below(chipBeatBytes)),
                         static_cast<std::uint8_t>(1u << rng.below(8)));
    }

    spare.beginMigrateBack();
    EXPECT_EQ(spare.state(), SpareState::CopyingBack);
    while (!spare.migrateBackDone())
        EXPECT_GT(spare.migrateBackStep(40), 0u);
    EXPECT_EQ(spare.backWatermark(), rank.blocks());
    EXPECT_GE(spare.latentBitsFixed(), 6u);
    // Re-armed for the next kill.
    EXPECT_EQ(spare.state(), SpareState::Armed);

    expectSnapshotsEqual(rank.snapshot(), before);
    EXPECT_TRUE(rank.isPristine());
}

TEST(SpareChip, UnvouchedSurvivorPoisonsTheSpanInsteadOfMixing)
{
    Rng rng(99);
    PmRank rank(64);
    rank.initialize(rng);
    rank.failChip(7, rng);

    // A survivor span with more errors than its 22-EC VLEW can carry:
    // the erasure fill has no redundancy left to notice, so the
    // rebuild must poison the span rather than risk silent garbage.
    for (unsigned block = 0; block < 32; ++block) {
        for (unsigned byte = 0; byte < chipBeatBytes; ++byte)
            rank.corruptByte(1, block, byte, 0xff);
    }

    SpareChip spare(rank, 2);
    spare.beginRebuild(7);
    std::vector<int> survivors;
    spare.rebuildStep(32, &survivors);
    EXPECT_EQ(survivors[1], -1);
    EXPECT_EQ(spare.poisonedBlocks(), 32u);
    for (unsigned b = 0; b < 32; ++b)
        EXPECT_TRUE(rank.isPoisoned(b)) << b;

    // The untouched second span still rebuilds cleanly.
    spare.rebuildStep(32, &survivors);
    EXPECT_TRUE(spare.rebuildDone());
    EXPECT_EQ(spare.poisonedBlocks(), 32u);
}

// Live-system service routes ------------------------------------------

/** A booted System + mirrored rank, shaped like one campaign trial. */
struct SpareRig
{
    SystemConfig cfg;
    System sys;
    PmRank rank;
    PersistOracle oracle;
    RasMirror mirror;

    static SystemConfig
    makeCfg(unsigned blocks, std::uint64_t seed)
    {
        SystemConfig cfg = SystemConfig::make(
            PmTech::Reram, proposalScheme(runtimeRberFor(PmTech::Reram)),
            "echo", seed | 1);
        cfg.cores = 2;
        cfg.cache.cores = 2;
        cfg.cache.l1Bytes = 8 * 1024;
        cfg.cache.llcBytes = 64 * 1024;
        cfg.cache.llcWays = 8;
        cfg.mem.dram.banks = 4;
        cfg.mem.pm.banks = 4;
        cfg.mem.writeMaxAge = nsToTicks(400);
        cfg.mem.writeIdleBurst = 4;
        cfg.mem.writeDrainHigh = 24;
        cfg.mem.writeDrainLow = 8;
        cfg.space.pmBase = 0;
        cfg.space.pmBytes =
            static_cast<std::uint64_t>(blocks) * blockBytes;
        cfg.space.dramBytes = 1u << 20;
        return cfg;
    }

    static PmRank
    makeRank(unsigned blocks, std::uint64_t seed)
    {
        Rng rng(seed);
        PmRank rank(blocks);
        rank.initialize(rng);
        return rank;
    }

    SpareRig(unsigned blocks, std::uint64_t seed, const RasConfig &ras)
        : cfg(makeCfg(blocks, seed)),
          sys(cfg,
              std::make_unique<CampaignWorkload>(cfg.space, 2, seed + 1)),
          rank(makeRank(blocks, seed + 2)), oracle(blocks),
          mirror(sys, rank, oracle, ras, 2, seed + 3)
    {
        std::uint8_t buf[blockBytes];
        for (unsigned b = 0; b < blocks; ++b) {
            rank.goldenBlock(b, buf);
            oracle.setBaseline(b, buf);
        }
        mirror.engine().start();
        sys.start();
    }
};

RasConfig
sparedConfig()
{
    RasConfig ras;
    ras.spareEnabled = true;
    return ras;
}

TEST(SpareLive, KillRebuildsOntoSpareAtFullStrength)
{
    SpareRig rig(256, 6001, sparedConfig());
    rig.sys.runUntil(nsToTicks(500));
    rig.mirror.engine().noteChipErrors(4, 1000);
    rig.sys.runUntil(nsToTicks(14000));

    EXPECT_TRUE(rig.mirror.spared());
    EXPECT_FALSE(rig.mirror.completed()); // no degraded migration ran
    EXPECT_EQ(rig.mirror.engine().state(), RasState::Spared);
    EXPECT_EQ(rig.mirror.engine().stats().rebuildsStarted, 1u);
    EXPECT_EQ(rig.mirror.engine().stats().rebuiltBlocks,
              rig.rank.blocks());
    ASSERT_NE(rig.mirror.spareChip(), nullptr);
    EXPECT_EQ(rig.mirror.spareChip()->state(), SpareState::Active);
    EXPECT_EQ(rig.mirror.spareChip()->poisonedBlocks(), 0u);

    RasTally tally;
    rig.mirror.finalCheck(tally);
    EXPECT_EQ(tally.sdc, 0u);
    EXPECT_EQ(tally.lostDurable, 0u);
    EXPECT_EQ(tally.ue, 0u);
}

TEST(SpareLive, SpareDeathMidRebuildFallsBackToDegraded)
{
    RasConfig ras = sparedConfig();
    // Slow pacing so the rebuild is reliably caught in flight.
    ras.rebuildStepInterval = nsToTicks(500);
    SpareRig rig(256, 7003, ras);
    RasEngine &eng = rig.mirror.engine();

    rig.sys.runUntil(nsToTicks(500));
    eng.noteChipErrors(6, 1000);
    Tick t = nsToTicks(500);
    while (t < nsToTicks(20000) &&
           !(eng.state() == RasState::Rebuilding &&
             eng.rebuildWatermark() >= rig.rank.blocks() / 2)) {
        t += nsToTicks(50);
        rig.sys.runUntil(t);
    }
    ASSERT_EQ(eng.state(), RasState::Rebuilding);

    // The spare device dies mid-rebuild: its trouble bucket crosses
    // and the engine must abandon the spare, re-drain, and complete
    // the PR-9 degraded failover instead — losing nothing durable.
    eng.noteSpareErrors(1000);
    rig.sys.runUntil(t + nsToTicks(16000));

    EXPECT_TRUE(rig.mirror.spareAbandoned());
    EXPECT_FALSE(rig.mirror.spared());
    EXPECT_TRUE(rig.mirror.completed());
    EXPECT_EQ(eng.state(), RasState::Degraded);
    EXPECT_EQ(eng.stats().spareAbandons, 1u);
    EXPECT_EQ(eng.watermark(), rig.rank.blocks());
    ASSERT_NE(rig.mirror.spareChip(), nullptr);
    EXPECT_EQ(rig.mirror.spareChip()->state(), SpareState::Abandoned);

    RasTally tally;
    rig.mirror.finalCheck(tally);
    EXPECT_EQ(tally.sdc, 0u);
    EXPECT_EQ(tally.lostDurable, 0u);
    EXPECT_EQ(tally.ue, 0u);
}

TEST(SpareLive, ChipReplacedMigratesBackToHealthy)
{
    SpareRig rig(256, 8005, sparedConfig());
    RasEngine &eng = rig.mirror.engine();

    rig.sys.runUntil(nsToTicks(500));
    eng.noteChipErrors(1, 1000);
    Tick t = nsToTicks(500);
    while (t < nsToTicks(20000) && eng.state() != RasState::Spared) {
        t += nsToTicks(100);
        rig.sys.runUntil(t);
    }
    ASSERT_EQ(eng.state(), RasState::Spared);

    eng.chipReplaced();
    rig.sys.runUntil(t + nsToTicks(12000));

    EXPECT_TRUE(rig.mirror.repaired());
    EXPECT_EQ(eng.state(), RasState::Healthy);
    EXPECT_EQ(eng.stats().repairs, 1u);
    ASSERT_NE(rig.mirror.spareChip(), nullptr);
    EXPECT_EQ(rig.mirror.spareChip()->state(), SpareState::Armed);
    EXPECT_GE(eng.stats().repairedAt, eng.stats().sparedAt);

    RasTally tally;
    rig.mirror.finalCheck(tally);
    EXPECT_EQ(tally.sdc, 0u);
    EXPECT_EQ(tally.lostDurable, 0u);
    EXPECT_EQ(tally.ue, 0u);
}

// Campaign ------------------------------------------------------------

SpareCampaignConfig
smallCampaign()
{
    SpareCampaignConfig cfg;
    cfg.seed = 47;
    cfg.trials = 16;
    cfg.chunkTrials = 2;
    cfg.trial.rankBlocks = 256;
    cfg.trial.horizon = nsToTicks(12000);
    return cfg;
}

TEST(SpareCampaign, ServiceRoutesHoldTheOracle)
{
    std::ostringstream os;
    SweepOptions opts;
    ThreadPool pool(2);
    opts.pool = &pool;
    const SpareCampaignConfig cfg = smallCampaign();
    const SpareTotals totals = spareCampaign(os, opts, cfg);

    EXPECT_EQ(totals.violations(), 0u);
    const RasTally sum = totals.total();
    EXPECT_EQ(sum.trials, cfg.trials);
    EXPECT_GT(sum.kills, 0u);
    EXPECT_GT(sum.rebuilds, 0u);
    // Every rebuild-plan trial reached Spared, every repair-plan trial
    // came all the way back to Healthy, and every spare-loss trial
    // fell back to a completed degraded migration.
    for (unsigned ti = 0; ti < numRasTechs; ++ti) {
        const auto &cells = totals.cells[ti];
        const auto plan = [&cells](SparePlan p) -> const RasTally & {
            return cells[static_cast<unsigned>(p)];
        };
        EXPECT_EQ(plan(SparePlan::Unarmed).failovers,
                  plan(SparePlan::Unarmed).trials);
        EXPECT_EQ(plan(SparePlan::Rebuild).spared,
                  plan(SparePlan::Rebuild).trials);
        EXPECT_EQ(plan(SparePlan::SpareLoss).failovers,
                  plan(SparePlan::SpareLoss).trials);
        EXPECT_EQ(plan(SparePlan::Repair).repairs,
                  plan(SparePlan::Repair).trials);
        EXPECT_EQ(plan(SparePlan::Unarmed).rebuilds, 0u);
    }
    EXPECT_NE(os.str().find("spare-loss"), std::string::npos);
}

TEST(SpareCampaign, OutputIsByteIdenticalAcrossWorkerCounts)
{
    const SpareCampaignConfig cfg = smallCampaign();
    std::string outputs[2];
    const unsigned workers[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        std::ostringstream os;
        SweepOptions opts;
        ThreadPool pool(workers[i]);
        opts.pool = &pool;
        spareCampaign(os, opts, cfg);
        outputs[i] = os.str();
    }
    EXPECT_EQ(outputs[0], outputs[1]);
}

// Env knobs -----------------------------------------------------------

TEST(SpareEnv, FromEnvOverridesSpareKnobs)
{
    ::setenv("NVCK_SPARE_ARMED", "on", 1);
    ::setenv("NVCK_SPARE_REBUILD_BLOCKS", "48", 1);
    ::setenv("NVCK_SPARE_REBUILD_INTERVAL", "120", 1);
    ::setenv("NVCK_RAS_PATROL_ORDER", "addr", 1);
    const RasConfig cfg = RasConfig::fromEnv();
    EXPECT_TRUE(cfg.spareEnabled);
    EXPECT_EQ(cfg.rebuildBlocksPerStep, 48u);
    EXPECT_EQ(cfg.rebuildStepInterval, nsToTicks(120));
    EXPECT_FALSE(cfg.wearAwarePatrol);
    ::unsetenv("NVCK_SPARE_ARMED");
    ::unsetenv("NVCK_SPARE_REBUILD_BLOCKS");
    ::unsetenv("NVCK_SPARE_REBUILD_INTERVAL");
    ::unsetenv("NVCK_RAS_PATROL_ORDER");

    const RasConfig defaults = RasConfig::fromEnv();
    EXPECT_FALSE(defaults.spareEnabled);
    EXPECT_TRUE(defaults.wearAwarePatrol);
}

} // namespace
} // namespace nvck
