/**
 * @file
 * System::powerFail(): a mid-run power cut drops all volatile state
 * (caches, OMVs, controller queues, EUR, persist bookkeeping) while
 * staying consistent enough for the same System to be driven again as
 * the rebooted machine.
 */

#include <gtest/gtest.h>

#include "chipkill/schemes.hh"
#include "sim/configs.hh"
#include "sim/system.hh"

namespace nvck {
namespace {

TEST(CrashSystem, PowerFailMidRunThenRebootKeepsRunning)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, proposalScheme(1e-5), "echo", 1);
    System sys(cfg);
    sys.start();
    sys.runUntil(nsToTicks(30000));
    const auto pm_writes_before = sys.memory().stats().pmWrites.value();

    const PowerFailReport report = sys.powerFail();
    EXPECT_GT(report.caches.linesDropped, 0u);
    EXPECT_TRUE(sys.memory().idle());

    // Drive the rebooted machine: the workload keeps generating
    // traffic and the controller keeps retiring it.
    sys.runUntil(nsToTicks(120000));
    EXPECT_GT(sys.memory().stats().pmWrites.value(), pm_writes_before);
}

TEST(CrashSystem, PowerFailIsIdempotentWhenIdle)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, bitErrorOnlyScheme(), "echo", 1);
    System sys(cfg);
    const PowerFailReport first = sys.powerFail();
    EXPECT_EQ(first.controller.pmWritesFlushed, 0u);
    EXPECT_EQ(first.persistsInFlight, 0u);
    const PowerFailReport second = sys.powerFail();
    EXPECT_EQ(second.caches.linesDropped, 0u);
}

} // namespace
} // namespace nvck
