/**
 * @file
 * Golden-output regression lock for the migrated bench sweeps: each
 * sweep runs in-process at reduced cost (goldenScale()) on explicit
 * 1-worker and 8-worker pools, and both emissions must match the
 * checked-in tests/golden/<case>.txt byte for byte. Any change to a
 * sweep's numbers, formatting, or determinism fails here first.
 *
 * To regenerate after an intentional change:
 *
 *   NVCK_REGEN_GOLDEN=1 ./test_bench_golden
 *
 * which rewrites the golden files from the 1-worker run (still
 * asserting the 8-worker run matches it) and reports the tests as
 * skipped so a stale CI cache cannot silently "pass" a regen run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/spare.hh"
#include "sweeps.hh"

namespace nvck {
namespace {

using SweepFn = void (*)(std::ostream &, const SweepOptions &,
                         const BenchScale &);

void
fig04Adapter(std::ostream &os, const SweepOptions &opts,
             const BenchScale &)
{
    fig04StorageVsCodeword(os, opts); // purely analytic: no scale knob
}

void
spareCampaignAdapter(std::ostream &os, const SweepOptions &opts,
                     const BenchScale &)
{
    // Tiny replayable hot-sparing campaign: every (tech x plan) cell
    // twice, same shape the unit tests drive. Locks the full table —
    // rebuild/abandon/repair counters included — byte for byte.
    SpareCampaignConfig cfg;
    cfg.seed = 47;
    cfg.trials = 16;
    cfg.chunkTrials = 2;
    cfg.trial.rankBlocks = 256;
    cfg.trial.horizon = nsToTicks(12000);
    spareCampaign(os, opts, cfg);
}

struct GoldenCase
{
    const char *name;
    SweepFn fn;
};

const GoldenCase kCases[] = {
    {"fig04_storage_vs_codeword", fig04Adapter},
    {"fig14_access_breakdown", fig14AccessBreakdown},
    {"fig15_cfactor", fig15Cfactor},
    {"fig18_omv_hit_rate", fig18OmvHitRate},
    {"boot_scrub", bootScrubCampaign},
    {"wear_leveling", wearLevelingCampaign},
    {"fault_sweep", faultSweep},
    {"spare_campaign", spareCampaignAdapter},
};

std::string
goldenPath(const std::string &name)
{
    return std::string(NVCK_GOLDEN_DIR) + "/" + name + ".txt";
}

std::string
runCase(const GoldenCase &c, unsigned workers)
{
    ThreadPool pool(workers);
    SweepOptions opts;
    opts.pool = &pool;
    std::ostringstream out;
    c.fn(out, opts, goldenScale());
    return out.str();
}

/** Point at the first differing line so failures read like a diff. */
std::string
firstDifference(const std::string &expected, const std::string &actual)
{
    std::istringstream e(expected), a(actual);
    std::string el, al;
    for (std::size_t line = 1;; ++line) {
        const bool eok = static_cast<bool>(std::getline(e, el));
        const bool aok = static_cast<bool>(std::getline(a, al));
        if (!eok && !aok)
            return "outputs identical";
        if (el != al || eok != aok)
            return "first difference at line " + std::to_string(line) +
                   "\n  golden: " + (eok ? el : "<eof>") +
                   "\n  actual: " + (aok ? al : "<eof>");
    }
}

class BenchGolden : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(BenchGolden, TableMatchesGoldenForOneAndEightWorkers)
{
    const GoldenCase &c = GetParam();

    const std::string serial = runCase(c, 1);
    const std::string wide = runCase(c, 8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, wide)
        << "NVCK_JOBS=8 output diverged from NVCK_JOBS=1: "
        << firstDifference(serial, wide);

    const std::string path = goldenPath(c.name);
    if (std::getenv("NVCK_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << serial;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run with NVCK_REGEN_GOLDEN=1 to create it";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), serial)
        << "sweep output changed vs " << path << ": "
        << firstDifference(golden.str(), serial);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, BenchGolden, ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // namespace
} // namespace nvck
