#include <gtest/gtest.h>

#include <vector>

#include "reliability/injector.hh"
#include "reliability/sdc_model.hh"
#include "sim/parallel.hh"

namespace nvck {
namespace {

RunControl
quickRun()
{
    RunControl rc;
    rc.warmup = nsToTicks(10000);
    rc.measure = nsToTicks(30000);
    rc.samplePeriod = nsToTicks(5000);
    return rc;
}

std::vector<ExperimentJob>
sampleJobs()
{
    const RunControl rc = quickRun();
    std::vector<ExperimentJob> jobs;
    for (const char *wl : {"echo", "ycsb", "hashmap", "ctree"}) {
        jobs.push_back({SystemConfig::make(PmTech::Reram,
                                           bitErrorOnlyScheme(), wl, 1),
                        rc});
        jobs.push_back({SystemConfig::make(PmTech::Pcm,
                                           proposalScheme(2e-4), wl, 7),
                        rc});
    }
    return jobs;
}

/** Bit-identical comparison of every RunMetrics field. */
void
expectSameMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.tech, b.tech);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mflops, b.mflops);
    EXPECT_EQ(a.perf, b.perf);
    EXPECT_EQ(a.cFactor, b.cFactor);
    EXPECT_EQ(a.omvHitRate, b.omvHitRate);
    EXPECT_EQ(a.dirtyPmFraction, b.dirtyPmFraction);
    EXPECT_EQ(a.omvFraction, b.omvFraction);
    EXPECT_EQ(a.pmReads, b.pmReads);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.overheadReads, b.overheadReads);
    EXPECT_EQ(a.overheadWrites, b.overheadWrites);
    EXPECT_EQ(a.vlewFetches, b.vlewFetches);
    EXPECT_EQ(a.oldDataFetches, b.oldDataFetches);
    EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.avgWriteLatencyNs, b.avgWriteLatencyNs);
    EXPECT_EQ(a.rowHitRate, b.rowHitRate);
}

TEST(ParallelEngine, MatchesSerialForAnyWorkerCount)
{
    const auto jobs = sampleJobs();

    // Ground truth: the plain serial loop, no engine involved.
    std::vector<RunMetrics> serial;
    for (const auto &job : jobs)
        serial.push_back(runOnce(job.config, job.rc));

    for (unsigned workers : {1u, 2u, 8u}) {
        ThreadPool pool(workers);
        const auto parallel = runAll(jobs, &pool);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " job=" + std::to_string(i));
            expectSameMetrics(serial[i], parallel[i]);
        }
    }
}

TEST(ParallelEngine, AbSweepMatchesSerialPair)
{
    const RunControl rc = quickRun();
    const std::vector<std::string> workloads = {"echo", "ycsb"};

    std::vector<AbResult> serial(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        serial[i].baseline = runBaseline(PmTech::Reram, workloads[i], 1, rc);
        serial[i].proposal = runProposal(PmTech::Reram, workloads[i], 1, rc);
    }

    for (unsigned workers : {1u, 4u}) {
        ThreadPool pool(workers);
        const auto par = runAbSweep(PmTech::Reram, workloads, 1, rc, &pool);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers));
            expectSameMetrics(serial[i].baseline, par[i].baseline);
            expectSameMetrics(serial[i].proposal, par[i].proposal);
        }
    }
}

void
expectSameReport(const InjectionReport &a, const InjectionReport &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.miscorrected, b.miscorrected);
    EXPECT_EQ(a.rejectedByCap, b.rejectedByCap);
    ASSERT_EQ(a.errorCount.buckets(), b.errorCount.buckets());
    for (std::size_t k = 0; k < a.errorCount.buckets(); ++k)
        EXPECT_EQ(a.errorCount.bucket(k), b.errorCount.bucket(k));
    EXPECT_EQ(a.errorCount.overflowed(), b.errorCount.overflowed());
    EXPECT_EQ(a.errorCount.samples(), b.errorCount.samples());
}

TEST(ParallelEngine, InjectionCountersBitIdenticalAcrossWorkers)
{
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 1e-3;
    c.trials = 5000; // spans several 512-trial chunks
    c.seed = 11;

    ThreadPool serial(1);
    const auto ref = injectRs(rs, c, &serial);
    EXPECT_EQ(ref.trials, c.trials);

    for (unsigned workers : {2u, 8u}) {
        ThreadPool pool(workers);
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectSameReport(ref, injectRs(rs, c, &pool));
    }

    const BchCodec vlew(512, 8);
    BchCampaign bc;
    bc.rber = 2e-3;
    bc.trials = 1500;
    bc.seed = 5;
    const auto bch_ref = injectBch(vlew, bc, &serial);
    EXPECT_EQ(bch_ref.trials, bc.trials);
    for (unsigned workers : {2u, 8u}) {
        ThreadPool pool(workers);
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectSameReport(bch_ref, injectBch(vlew, bc, &pool));
    }
}

TEST(ParallelEngine, SdcMonteCarloDeterministicAndNearAnalytic)
{
    SdcInputs in;
    in.rber = 2e-3; // elevated so the tail is observable in 200k trials
    const double analytic = vlewFallbackFraction(in, 2);

    ThreadPool serial(1);
    ThreadPool wide(8);
    const double mc1 =
        vlewFallbackFractionMc(in, 2, 200000, 3, &serial);
    const double mc8 = vlewFallbackFractionMc(in, 2, 200000, 3, &wide);
    EXPECT_EQ(mc1, mc8); // byte-identical estimate, any worker count
    EXPECT_NEAR(mc1, analytic, 0.25 * analytic);
}

} // namespace
} // namespace nvck
