#include <gtest/gtest.h>

#include <chrono>
#include <iterator>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "reliability/injector.hh"
#include "reliability/sdc_model.hh"
#include "sim/parallel.hh"

namespace nvck {
namespace {

RunControl
quickRun()
{
    RunControl rc;
    rc.warmup = nsToTicks(10000);
    rc.measure = nsToTicks(30000);
    rc.samplePeriod = nsToTicks(5000);
    return rc;
}

std::vector<ExperimentJob>
sampleJobs()
{
    const RunControl rc = quickRun();
    std::vector<ExperimentJob> jobs;
    for (const char *wl : {"echo", "ycsb", "hashmap", "ctree"}) {
        jobs.push_back({SystemConfig::make(PmTech::Reram,
                                           bitErrorOnlyScheme(), wl, 1),
                        rc});
        jobs.push_back({SystemConfig::make(PmTech::Pcm,
                                           proposalScheme(2e-4), wl, 7),
                        rc});
    }
    return jobs;
}

/** Bit-identical comparison of every RunMetrics field. */
void
expectSameMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.tech, b.tech);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mflops, b.mflops);
    EXPECT_EQ(a.perf, b.perf);
    EXPECT_EQ(a.cFactor, b.cFactor);
    EXPECT_EQ(a.omvHitRate, b.omvHitRate);
    EXPECT_EQ(a.dirtyPmFraction, b.dirtyPmFraction);
    EXPECT_EQ(a.omvFraction, b.omvFraction);
    EXPECT_EQ(a.pmReads, b.pmReads);
    EXPECT_EQ(a.pmWrites, b.pmWrites);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.overheadReads, b.overheadReads);
    EXPECT_EQ(a.overheadWrites, b.overheadWrites);
    EXPECT_EQ(a.vlewFetches, b.vlewFetches);
    EXPECT_EQ(a.oldDataFetches, b.oldDataFetches);
    EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.avgWriteLatencyNs, b.avgWriteLatencyNs);
    EXPECT_EQ(a.rowHitRate, b.rowHitRate);
}

TEST(ParallelEngine, MatchesSerialForAnyWorkerCount)
{
    const auto jobs = sampleJobs();

    // Ground truth: the plain serial loop, no engine involved.
    std::vector<RunMetrics> serial;
    for (const auto &job : jobs)
        serial.push_back(runOnce(job.config, job.rc));

    for (unsigned workers : {1u, 2u, 8u}) {
        ThreadPool pool(workers);
        const auto parallel = runAll(jobs, &pool);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " job=" + std::to_string(i));
            expectSameMetrics(serial[i], parallel[i]);
        }
    }
}

TEST(ParallelEngine, AbSweepMatchesSerialPair)
{
    const RunControl rc = quickRun();
    const std::vector<std::string> workloads = {"echo", "ycsb"};

    std::vector<AbResult> serial(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        serial[i].baseline = runBaseline(PmTech::Reram, workloads[i], 1, rc);
        serial[i].proposal = runProposal(PmTech::Reram, workloads[i], 1, rc);
    }

    for (unsigned workers : {1u, 4u}) {
        ThreadPool pool(workers);
        const auto par = runAbSweep(PmTech::Reram, workloads, 1, rc, &pool);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers));
            expectSameMetrics(serial[i].baseline, par[i].baseline);
            expectSameMetrics(serial[i].proposal, par[i].proposal);
        }
    }
}

void
expectSameReport(const InjectionReport &a, const InjectionReport &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.clean, b.clean);
    EXPECT_EQ(a.corrected, b.corrected);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.miscorrected, b.miscorrected);
    EXPECT_EQ(a.rejectedByCap, b.rejectedByCap);
    ASSERT_EQ(a.errorCount.buckets(), b.errorCount.buckets());
    for (std::size_t k = 0; k < a.errorCount.buckets(); ++k)
        EXPECT_EQ(a.errorCount.bucket(k), b.errorCount.bucket(k));
    EXPECT_EQ(a.errorCount.overflowed(), b.errorCount.overflowed());
    EXPECT_EQ(a.errorCount.samples(), b.errorCount.samples());
}

TEST(ParallelEngine, InjectionCountersBitIdenticalAcrossWorkers)
{
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 1e-3;
    c.trials = 5000; // spans several 512-trial chunks
    c.seed = 11;

    ThreadPool serial(1);
    const auto ref = injectRs(rs, c, &serial);
    EXPECT_EQ(ref.trials, c.trials);

    for (unsigned workers : {2u, 8u}) {
        ThreadPool pool(workers);
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectSameReport(ref, injectRs(rs, c, &pool));
    }

    const BchCodec vlew(512, 8);
    BchCampaign bc;
    bc.rber = 2e-3;
    bc.trials = 1500;
    bc.seed = 5;
    const auto bch_ref = injectBch(vlew, bc, &serial);
    EXPECT_EQ(bch_ref.trials, bc.trials);
    for (unsigned workers : {2u, 8u}) {
        ThreadPool pool(workers);
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectSameReport(bch_ref, injectBch(vlew, bc, &pool));
    }
}

/**
 * A ParallelSweep whose points sleep for a nondeterministic duration
 * (scheduling noise) before computing a value from their per-point
 * substream. Whatever the interleaving, collection order and values
 * must be byte-identical for 1, 2, and 8 workers.
 */
std::vector<SweepOutcome<std::uint64_t>>
noisySweep(unsigned workers, SweepOptions opts = SweepOptions{})
{
    constexpr int kPoints = 24;
    ThreadPool pool(workers);
    opts.pool = &pool;
    ParallelSweep<std::uint64_t> sweep(99, opts);
    for (int i = 0; i < kPoints; ++i)
        sweep.add("pt-" + std::to_string(i), [](Rng &rng) {
            // Deliberately nondeterministic sleep: results may not
            // depend on who finishes when.
            thread_local std::mt19937 jitter{std::random_device{}()};
            std::this_thread::sleep_for(
                std::chrono::microseconds(jitter() % 1500));
            std::uint64_t v = 0;
            for (int draw = 0; draw < 8; ++draw)
                v = v * 31 + rng.next();
            return v;
        });
    return sweep.run();
}

TEST(ParallelSweep, OrderAndValuesSurviveRandomWorkerSleep)
{
    const auto ref = noisySweep(1);
    ASSERT_EQ(ref.size(), 24u);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].label, "pt-" + std::to_string(i));
        EXPECT_EQ(ref[i].index, i);
    }

    for (unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        const auto got = noisySweep(workers);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(got[i].label, ref[i].label) << "point " << i;
            EXPECT_EQ(got[i].index, ref[i].index) << "point " << i;
            EXPECT_EQ(got[i].value, ref[i].value) << "point " << i;
        }
    }
}

TEST(ParallelSweep, FilterAndPointsPreservePerPointSubstreams)
{
    const auto full = noisySweep(2);

    // --filter: the surviving point keeps the stream (and value) it
    // had in the full sweep — substreams key off declaration index.
    SweepOptions filter;
    filter.filter = "pt-7"; // matches pt-7 only (no pt-7x exists)
    const auto filtered = noisySweep(8, filter);
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].label, "pt-7");
    EXPECT_EQ(filtered[0].index, 7u);
    EXPECT_EQ(filtered[0].value, full[7].value);

    // --points: a truncated run reproduces the full run's prefix.
    SweepOptions head;
    head.points = 5;
    const auto prefix = noisySweep(8, head);
    ASSERT_EQ(prefix.size(), 5u);
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        EXPECT_EQ(prefix[i].label, full[i].label);
        EXPECT_EQ(prefix[i].value, full[i].value) << "point " << i;
    }
}

TEST(ParallelSweep, AcceptsPlainClosuresAndReportsTiming)
{
    ThreadPool pool(2);
    SweepOptions opts;
    opts.pool = &pool;
    ParallelSweep<int> sweep(0, opts);
    for (int i = 0; i < 6; ++i)
        sweep.add("analytic-" + std::to_string(i),
                  [i] { return i * i; }); // no Rng parameter
    const auto out = sweep.run();
    ASSERT_EQ(out.size(), 6u);
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(out[i].value, i * i);
        EXPECT_GE(out[i].millis, 0.0);
    }
}

TEST(SweepOptions, ParseRecognizesEveryFlagForm)
{
    const char *argv[] = {"bench",          "--points", "3",
                          "--filter=hash",  "--timing", "--jobs",
                          "2",              "--seed",   "42"};
    const auto opts =
        SweepOptions::parse(static_cast<int>(std::size(argv)), argv);
    EXPECT_EQ(opts.points, 3u);
    EXPECT_EQ(opts.filter, "hash");
    EXPECT_TRUE(opts.timing);
    EXPECT_EQ(opts.jobs, 2u);
    EXPECT_FALSE(opts.list);
    EXPECT_TRUE(opts.seedSet);
    EXPECT_EQ(opts.seed, 42u);

    const char *eq[] = {"bench", "--points=12", "--filter", "omv",
                        "--list", "--seed=2018"};
    const auto alt =
        SweepOptions::parse(static_cast<int>(std::size(eq)), eq);
    EXPECT_EQ(alt.points, 12u);
    EXPECT_EQ(alt.filter, "omv");
    EXPECT_TRUE(alt.list);
    EXPECT_FALSE(alt.timing);
    EXPECT_TRUE(alt.seedSet);
    EXPECT_EQ(alt.seed, 2018u);
}

TEST(SweepOptions, SeedOverrideChangesEveryPointStream)
{
    // The --seed override must reseed the sweep (so a logged CI seed
    // replays verbatim) while an unset seed keeps the bench default.
    auto draw = [](SweepOptions opts) {
        ThreadPool pool(2);
        opts.pool = &pool;
        ParallelSweep<std::uint64_t> sweep(7, opts);
        for (int i = 0; i < 4; ++i)
            sweep.add("p" + std::to_string(i),
                      [](Rng &rng) { return rng.next(); });
        std::vector<std::uint64_t> vals;
        for (const auto &out : sweep.run())
            vals.push_back(out.value);
        return vals;
    };

    SweepOptions plain;
    SweepOptions reseeded;
    reseeded.seed = 99;
    reseeded.seedSet = true;
    SweepOptions same_as_default;
    same_as_default.seed = 7;
    same_as_default.seedSet = true;

    EXPECT_NE(draw(plain), draw(reseeded));
    EXPECT_EQ(draw(plain), draw(same_as_default));
    EXPECT_EQ(draw(reseeded), draw(reseeded));
}

TEST(ParallelEngine, SdcMonteCarloDeterministicAndNearAnalytic)
{
    SdcInputs in;
    in.rber = 2e-3; // elevated so the tail is observable in 200k trials
    const double analytic = vlewFallbackFraction(in, 2);

    ThreadPool serial(1);
    ThreadPool wide(8);
    const double mc1 =
        vlewFallbackFractionMc(in, 2, 200000, 3, &serial);
    const double mc8 = vlewFallbackFractionMc(in, 2, 200000, 3, &wide);
    EXPECT_EQ(mc1, mc8); // byte-identical estimate, any worker count
    EXPECT_NEAR(mc1, analytic, 0.25 * analytic);
}

} // namespace
} // namespace nvck
