#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"

namespace nvck {
namespace {

TEST(Degraded, GeometryAfterReconfiguration)
{
    DegradedRank rank(256);
    // Section V-E: each reconfigured VLEW contains 256B/64B = 4 blocks
    // striped across the rank, so correcting one block only fetches a
    // handful of regular blocks (vs 36 in healthy mode).
    EXPECT_EQ(rank.blocksPerVlew(), 4u);
    EXPECT_LE(rank.correctionFetchBlocks(), 8u);
}

TEST(Degraded, CleanRoundTrip)
{
    DegradedRank rank(256);
    Rng rng(1);
    rank.initialize(rng);
    std::uint8_t data[blockBytes], out[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        data[i] = static_cast<std::uint8_t>(i ^ 0x5A);
    rank.writeBlock(9, data);
    const auto res = rank.readBlock(9, out);
    EXPECT_FALSE(res.usedVlew);
    EXPECT_TRUE(res.dataCorrect);
    EXPECT_EQ(std::memcmp(out, data, blockBytes), 0);
    EXPECT_TRUE(rank.isPristine());
}

TEST(Degraded, CorrectsRuntimeErrors)
{
    DegradedRank rank(256);
    Rng rng(3);
    rank.initialize(rng);
    rank.injectErrors(rng, 2e-4);
    std::uint8_t out[blockBytes];
    unsigned vlew_reads = 0;
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto res = rank.readBlock(b, out);
        ASSERT_FALSE(res.failed) << "block " << b;
        ASSERT_TRUE(res.dataCorrect) << "block " << b;
        if (res.usedVlew)
            ++vlew_reads;
    }
    EXPECT_GT(vlew_reads, 0u);
}

TEST(Degraded, SurvivesBootRberViaScrub)
{
    DegradedRank rank(512);
    Rng rng(5);
    rank.initialize(rng);
    rank.injectErrors(rng, 1e-3);
    EXPECT_EQ(rank.scrub(), RecoveryOutcome::Corrected);
    EXPECT_TRUE(rank.isPristine());
}

TEST(Degraded, TakeOverPreservesData)
{
    // Healthy rank -> chip 5 dies -> scrub rebuilds it -> reconfigure
    // into degraded mode; every block must carry over bit-exactly.
    PmRank healthy(128);
    Rng rng(7);
    healthy.initialize(rng);
    std::uint8_t marker[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        marker[i] = static_cast<std::uint8_t>(0xC0 + i);
    healthy.writeBlock(77, marker);

    healthy.failChip(5, rng);
    const auto report = healthy.bootScrub();
    ASSERT_FALSE(report.uncorrectable);

    DegradedRank degraded = DegradedRank::takeOver(healthy, 5);
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < degraded.blocks(); ++b) {
        std::uint8_t expect[blockBytes];
        healthy.goldenBlock(b, expect);
        const auto res = degraded.readBlock(b, out);
        ASSERT_TRUE(res.dataCorrect);
        ASSERT_EQ(std::memcmp(out, expect, blockBytes), 0)
            << "block " << b;
    }
    EXPECT_EQ(std::memcmp(out, marker, 0), 0);
    degraded.goldenBlock(77, out);
    EXPECT_EQ(std::memcmp(out, marker, blockBytes), 0);
}

TEST(Degraded, WritesKeepStripedCodeConsistent)
{
    DegradedRank rank(256);
    Rng rng(9);
    rank.initialize(rng);
    std::uint8_t data[blockBytes], out[blockBytes];
    // Hammer all four blocks of one VLEW, then verify under errors.
    for (int round = 0; round < 5; ++round) {
        for (unsigned b = 4; b < 8; ++b) {
            for (auto &byte : data)
                byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
            rank.writeBlock(b, data);
        }
    }
    rank.injectErrors(rng, 5e-4);
    for (unsigned b = 4; b < 8; ++b) {
        const auto res = rank.readBlock(b, out);
        ASSERT_FALSE(res.failed);
        ASSERT_TRUE(res.dataCorrect);
    }
}

} // namespace
} // namespace nvck
