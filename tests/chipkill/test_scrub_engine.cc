/**
 * @file
 * Differential pins for the batched scrub engine (chipkill/scrub.hh):
 *
 *  - the fast corrupt-word decode (residue-reuse syndromes, even-step
 *    skipping Berlekamp-Massey, root-count-bounded Chien search) must
 *    be bit-identical to the reference decode() across the KernelDiff
 *    parameter points with 0..t+2 injected errors;
 *  - a whole-rank engine sweep must leave byte-identical media and
 *    report identical per-word outcomes as the word-at-a-time
 *    reference path, over random error / burst / torn-write mixes,
 *    for 1 and 8 workers and odd batch sizes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"
#include "chipkill/scrub.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "common/types.hh"
#include "ecc/bch.hh"

namespace nvck {
namespace {

struct BchPoint
{
    unsigned k;
    unsigned t;
};

class ScrubFastDecode : public ::testing::TestWithParam<BchPoint> {};

TEST_P(ScrubFastDecode, SolveFromResidueMatchesDecode)
{
    const auto [k, t] = GetParam();
    for (const CodecKernel kernel :
         {CodecKernel::Scalar, CodecKernel::Sliced}) {
        const BchCodec codec(k, t, 0, kernel);
        Rng rng(0x5CB + k * 31 + t +
                (kernel == CodecKernel::Sliced ? 1 : 0));
        for (unsigned errors = 0; errors <= t + 2; ++errors) {
            for (unsigned trial = 0; trial < 4; ++trial) {
                BitVec data(k);
                data.randomize(rng);
                BitVec noisy = codec.encode(data);
                noisy.injectExactErrors(rng, errors);

                BchResidue res;
                codec.residueStart(res);
                codec.residueAbsorbBits(res, noisy.raw().data(),
                                        noisy.size());
                ASSERT_EQ(codec.residueIsZero(res),
                          codec.isCodeword(noisy))
                    << "errors=" << errors;
                if (!codec.residueIsZero(res)) {
                    EXPECT_EQ(codec.syndromesFromResidue(res),
                              codec.syndromes(noisy))
                        << "errors=" << errors;
                }

                BitVec decoded = noisy;
                const auto ref = codec.decode(decoded);
                for (const ScrubDecodePath path :
                     {ScrubDecodePath::Full, ScrubDecodePath::Fast}) {
                    const auto fast = codec.solveFromResidue(res, path);
                    EXPECT_EQ(fast.status, ref.status)
                        << "errors=" << errors << " path="
                        << scrubDecodePathName(path);
                    EXPECT_EQ(fast.corrections, ref.corrections);
                    EXPECT_EQ(fast.positions, ref.positions);
                }
            }
        }
    }
}

TEST_P(ScrubFastDecode, SegmentedAbsorbMatchesWholeWord)
{
    // The engine feeds [code bits | data bytes] as two segments; any
    // segmentation must land on the same residue as one absorb of the
    // whole word.
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(0xAB5 + k + t);
    BitVec word(codec.n());
    word.randomize(rng);

    BchResidue whole;
    codec.residueStart(whole);
    codec.residueAbsorbBits(whole, word.raw().data(), word.size());

    for (const unsigned split : {1u, 7u, codec.r(), codec.n() - 3}) {
        BitVec low(split);
        BitVec high(codec.n() - split);
        low.copyRange(0, word, 0, split);
        high.copyRange(0, word, split, codec.n() - split);
        BchResidue seg;
        codec.residueStart(seg);
        codec.residueAbsorbBits(seg, high.raw().data(), high.size());
        codec.residueAbsorbBits(seg, low.raw().data(), low.size());
        EXPECT_EQ(seg.rem, whole.rem) << "split=" << split;
    }

    // Byte-granular top segment through residueAbsorbBytes (the data
    // bits are whole bytes for every code point here), code bits
    // through the packed-word path — exactly the engine's split.
    ASSERT_EQ(k % 8, 0u);
    std::vector<std::uint8_t> data_bytes(k / 8);
    word.getBytes(codec.r(), data_bytes.data(), data_bytes.size());
    BitVec low(codec.r());
    low.copyRange(0, word, 0, codec.r());
    BchResidue seg;
    codec.residueStart(seg);
    codec.residueAbsorbBytes(seg, data_bytes.data(),
                             data_bytes.size());
    codec.residueAbsorbBits(seg, low.raw().data(), low.size());
    EXPECT_EQ(seg.rem, whole.rem);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodePoints, ScrubFastDecode,
    ::testing::Values(BchPoint{64, 2}, BchPoint{128, 3},
                      BchPoint{512, 5}, BchPoint{512, 8},
                      BchPoint{512, 14}, BchPoint{2048, 22}),
    [](const auto &info) {
        return "k" + std::to_string(info.param.k) + "t" +
               std::to_string(info.param.t);
    });

constexpr unsigned testBlocks = 256; // 8 VLEWs per chip

bool
sameMedia(const RankSnapshot &a, const RankSnapshot &b)
{
    return a.chipStore == b.chipStore && a.codeStore == b.codeStore &&
           a.goldenStore == b.goldenStore &&
           a.goldenCode == b.goldenCode && a.poisoned == b.poisoned;
}

/** A rank with bit errors, one hopeless burst, and torn writes. */
PmRank
messyRank(std::uint64_t seed)
{
    PmRank rank(testBlocks);
    Rng rng(seed);
    rank.initialize(rng);

    // Bit errors heavy enough to dirty many VLEWs.
    rank.injectErrors(rng, 1e-3);

    // A dense burst that overwhelms one VLEW (uncorrectable word).
    const auto chip = static_cast<unsigned>(rng.below(rank.chips()));
    for (unsigned block = 0; block < 8; ++block)
        for (unsigned byte = 0; byte < chipBeatBytes; ++byte)
            rank.corruptByte(chip, block, byte, 0xFF);

    // Torn writes: partial bursts and full bursts with partial EUR
    // drains, exactly the states crashRecovery() scrubs.
    std::uint8_t data[blockBytes];
    for (unsigned i = 0; i < 4; ++i) {
        const auto block =
            static_cast<unsigned>(rng.below(rank.blocks()));
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
        if (rng.chance(0.5)) {
            const auto data_mask =
                static_cast<std::uint16_t>(rng.next() & 0x1FF);
            rank.applyTornWrite(block, data, data_mask, 0);
        } else {
            const auto code_mask =
                static_cast<std::uint16_t>(rng.next() & 0x1FF);
            rank.applyTornWrite(block, data, 0x1FF, code_mask);
        }
    }
    return rank;
}

TEST(ScrubEngineDiff, CleanRankStaysUntouched)
{
    PmRank rank(testBlocks);
    Rng rng(1);
    rank.initialize(rng);
    const auto before = rank.snapshot();

    const auto outcomes = ScrubEngine().sweep(rank);
    ASSERT_EQ(outcomes.size(),
              static_cast<std::size_t>(rank.chips()) *
                  rank.vlewsPerChip());
    for (const auto &o : outcomes) {
        EXPECT_EQ(o.corrections, 0);
        EXPECT_EQ(o.changedBlocks, 0u);
    }
    EXPECT_TRUE(sameMedia(rank.snapshot(), before));
    EXPECT_TRUE(rank.isPristine());

    const auto stats = ScrubEngine::tally(outcomes);
    EXPECT_EQ(stats.wordsScanned, outcomes.size());
    EXPECT_EQ(stats.wordsDirty, 0u);
    EXPECT_EQ(stats.bitsCorrected, 0u);
}

TEST(ScrubEngineDiff, ErrorMixesMatchReference)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        PmRank rank = messyRank(seed);
        const auto dirty = rank.snapshot();

        const auto batched = ScrubEngine().sweep(rank);
        const auto media_batched = rank.snapshot();

        rank.restore(dirty);
        const auto reference = ScrubEngine().sweepReference(rank);

        ASSERT_EQ(batched.size(), reference.size()) << "seed=" << seed;
        for (std::size_t w = 0; w < batched.size(); ++w)
            EXPECT_EQ(batched[w], reference[w])
                << "seed=" << seed << " word=" << w;
        EXPECT_TRUE(sameMedia(media_batched, rank.snapshot()))
            << "seed=" << seed;

        const auto stats = ScrubEngine::tally(batched);
        EXPECT_GT(stats.wordsDirty, 0u) << "seed=" << seed;
        EXPECT_GT(stats.wordsUncorrectable, 0u) << "seed=" << seed;
    }
}

TEST(ScrubEngineDiff, WorkerCountAndBatchSizeAreByteIdentical)
{
    PmRank rank = messyRank(42);
    const auto dirty = rank.snapshot();

    ThreadPool one(1);
    ThreadPool eight(8);
    std::vector<std::vector<ScrubWordResult>> outcomes;
    std::vector<RankSnapshot> media;
    for (ThreadPool *pool : {&one, &eight}) {
        for (const unsigned batch : {1u, 3u, 64u, 4096u}) {
            ScrubEngine::Options opts;
            opts.pool = pool;
            opts.batchWords = batch;
            rank.restore(dirty);
            outcomes.push_back(ScrubEngine(opts).sweep(rank));
            media.push_back(rank.snapshot());
        }
    }
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i], outcomes[0]) << "config " << i;
        EXPECT_TRUE(sameMedia(media[i], media[0])) << "config " << i;
    }
}

TEST(ScrubEngineDiff, FullAndFastDecodePathsAgreeOnRankSweeps)
{
    PmRank rank = messyRank(77);
    const auto dirty = rank.snapshot();

    ScrubEngine::Options full_opts;
    full_opts.decodePath = ScrubDecodePath::Full;
    const auto full = ScrubEngine(full_opts).sweep(rank);
    const auto media_full = rank.snapshot();

    rank.restore(dirty);
    ScrubEngine::Options fast_opts;
    fast_opts.decodePath = ScrubDecodePath::Fast;
    const auto fast = ScrubEngine(fast_opts).sweep(rank);

    EXPECT_EQ(full, fast);
    EXPECT_TRUE(sameMedia(media_full, rank.snapshot()));
}

TEST(ScrubEngineDiff, StuckCellsReassertedLikeReference)
{
    PmRank rank(testBlocks);
    Rng rng(9);
    rank.initialize(rng);
    // Stuck cells that disagree with the stored data, plus bit errors.
    rank.setStuckBit(2, 17, 3, true);
    rank.setStuckBit(2, 17, 4, false);
    rank.setStuckBit(5, 900, 0, true);
    rank.injectErrors(rng, 5e-4);
    const auto dirty = rank.snapshot();

    const auto batched = ScrubEngine().sweep(rank);
    const auto media_batched = rank.snapshot();
    rank.restore(dirty);
    const auto reference = ScrubEngine().sweepReference(rank);

    EXPECT_EQ(batched, reference);
    EXPECT_TRUE(sameMedia(media_batched, rank.snapshot()));
}

/** A degraded rank with bit errors plus in- and out-of-budget tears. */
DegradedRank
messyDegraded(std::uint64_t seed)
{
    DegradedRank rank(64);
    Rng rng(seed);
    rank.initialize(rng);
    rank.injectErrors(rng, 2e-4);

    // A torn write whose delta fits the BCH budget (rolls back)...
    std::uint8_t data[blockBytes];
    rank.goldenBlock(5, data);
    for (unsigned i = 0; i < 6; ++i)
        data[rng.below(blockBytes)] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
    rank.applyTornWrite(5, data, /*code_applied=*/false);

    // ...and one whose random delta is far beyond it (uncorrectable).
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    rank.applyTornWrite(9, data, /*code_applied=*/false);
    return rank;
}

TEST(ScrubEngineDiff, DegradedRankMatchesReference)
{
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
        DegradedRank rank = messyDegraded(seed);
        const auto dirty = rank.snapshot();

        const auto batched = ScrubEngine().sweep(rank);
        const auto media_batched = rank.snapshot();

        rank.restore(dirty);
        const auto reference = ScrubEngine().sweepReference(rank);

        EXPECT_EQ(batched, reference) << "seed=" << seed;
        const auto after = rank.snapshot();
        EXPECT_EQ(media_batched.store, after.store) << "seed=" << seed;
        EXPECT_EQ(media_batched.codeStore, after.codeStore);

        const auto stats = ScrubEngine::tally(batched);
        EXPECT_GT(stats.wordsUncorrectable, 0u) << "seed=" << seed;

        // The full scrub (engine + poisoning policy) must be
        // deterministic across repeated runs from the same image.
        rank.restore(dirty);
        rank.scrub();
        const auto scrubbed = rank.snapshot();
        EXPECT_TRUE(rank.isPristine());
        rank.restore(dirty);
        rank.scrub();
        EXPECT_EQ(rank.snapshot().store, scrubbed.store);
    }
}

TEST(ScrubEngineDiff, DegradedPoisonedSpansAreSkipped)
{
    DegradedRank rank(64);
    Rng rng(21);
    rank.initialize(rng);
    // A random torn delta far outside the BCH budget: scrub() zeroes
    // and poisons the span.
    std::uint8_t junk[blockBytes];
    for (auto &byte : junk)
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    rank.applyTornWrite(0, junk, /*code_applied=*/false);
    rank.scrub();
    ASSERT_TRUE(rank.isPoisoned(0));

    // Subsequent sweeps leave the poisoned span untouched and report
    // it clean/skipped through both paths.
    const auto batched = ScrubEngine().sweep(rank);
    const auto reference = ScrubEngine().sweepReference(rank);
    EXPECT_EQ(batched[0].corrections, 0);
    EXPECT_EQ(batched, reference);
}

} // namespace
} // namespace nvck
