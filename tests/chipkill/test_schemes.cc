#include <gtest/gtest.h>

#include "chipkill/schemes.hh"
#include "reliability/error_model.hh"

namespace nvck {
namespace {

TEST(Schemes, BaselineHasNoEccTraffic)
{
    const auto s = bitErrorOnlyScheme();
    EXPECT_FALSE(s.omvEnabled);
    EXPECT_FALSE(s.eurEnabled);
    EXPECT_DOUBLE_EQ(s.vlewFetchProb, 0.0);
    EXPECT_FALSE(s.fetchOldAlways);
    EXPECT_FALSE(s.fetchOldOnOmvMiss);
    EXPECT_DOUBLE_EQ(s.pmWriteScale, 1.0);
    EXPECT_NEAR(s.storageOverhead, 0.28, 0.01);
}

TEST(Schemes, ProposalFallbackRateNearPaperValue)
{
    // Section V-C: ~0.018% of reads fetch VLEWs on average; our model
    // at the 2e-4 stress point gives ~0.02%.
    const auto s = proposalScheme(rber::runtimePcm3Hourly);
    EXPECT_GT(s.vlewFetchProb, 1e-4);
    EXPECT_LT(s.vlewFetchProb, 3.5e-4);
    EXPECT_NEAR(s.storageOverhead, 0.27, 0.005);
    EXPECT_TRUE(s.omvEnabled);
    EXPECT_TRUE(s.eurEnabled);
    EXPECT_TRUE(s.fetchOldOnOmvMiss);
    EXPECT_FALSE(s.fetchOldAlways);
}

TEST(Schemes, ProposalBandwidthOverheadIsTiny)
{
    // 0.018-0.02% of reads x ~36 blocks ~ 0.6-0.8% read bandwidth
    // overhead (Section V-C), versus 140%+ for the naive scheme.
    const auto prop = proposalScheme(rber::runtimePcm3Hourly);
    const double prop_bw = prop.vlewFetchProb * prop.vlewFetchBlocks;
    EXPECT_LT(prop_bw, 0.01);

    const auto naive = naiveVlewScheme(rber::runtimePcm3Hourly);
    const double naive_bw =
        naive.vlewFetchProb * naive.vlewFetchBlocks;
    EXPECT_GT(naive_bw, 1.0); // >100% of demand reads
    EXPECT_GT(naive_bw / prop_bw, 100.0);
}

TEST(Schemes, NaiveVlewAlwaysFetchesOld)
{
    const auto s = naiveVlewScheme(rber::runtimeReram);
    EXPECT_TRUE(s.fetchOldAlways);
    EXPECT_FALSE(s.omvEnabled);
    // ~4% of reads contain errors at 7e-5 (Section IV-A).
    EXPECT_NEAR(s.vlewFetchProb, 0.04, 0.006);
}

TEST(Schemes, CFactorInflation)
{
    auto s = proposalScheme(rber::runtimeReram);
    applyCFactor(s, 0.0);
    EXPECT_DOUBLE_EQ(s.pmWriteScale, 1.0);
    applyCFactor(s, 1.0);
    EXPECT_NEAR(s.pmWriteScale, 1.0 + 33.0 / 8.0, 1e-12);
    applyCFactor(s, 0.25);
    EXPECT_NEAR(s.pmWriteScale, 1.0 + 33.0 / 8.0 * 0.25, 1e-12);
    EXPECT_EQ(s.pmWriteExtra, nsToTicks(20.0));
}

TEST(Schemes, FallbackRateGrowsWithRber)
{
    const auto low = proposalScheme(7e-5);
    const auto high = proposalScheme(2e-4);
    EXPECT_LT(low.vlewFetchProb, high.vlewFetchProb);
}

} // namespace
} // namespace nvck
