/**
 * @file
 * Crash-point semantics at the rank level: applyTornWrite() pins the
 * legal torn states, crashRecovery() must settle every block on the
 * old value, the new value, or a reported UE — never silent garbage —
 * and snapshot()/restore() must round-trip the persistent image.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"

namespace nvck {
namespace {

constexpr unsigned testBlocks = 128; // 4 VLEWs per chip

PmRank
freshRank(std::uint64_t seed = 1, unsigned blocks = testBlocks)
{
    PmRank rank(blocks);
    Rng rng(seed);
    rank.initialize(rng);
    return rank;
}

std::uint16_t
allChipsMask(const PmRank &rank)
{
    return static_cast<std::uint16_t>((1u << rank.chips()) - 1);
}

/** Block reads back as exactly @p image. */
bool
readsAs(PmRank &rank, unsigned block, const std::uint8_t *image)
{
    std::uint8_t out[blockBytes];
    const auto res = rank.readBlock(block, out);
    return !(res.path == ReadPath::Failed) &&
           std::memcmp(out, image, blockBytes) == 0;
}

TEST(CrashRecovery, PristineRankIsANoOp)
{
    PmRank rank = freshRank(5);
    const auto report = rank.crashRecovery();
    EXPECT_EQ(report.vlewsCorrected, 0u);
    EXPECT_EQ(report.blocksRsResolved, 0u);
    EXPECT_EQ(report.blocksErasureResolved, 0u);
    EXPECT_TRUE(report.deadChips.empty());
    EXPECT_TRUE(report.ueBlocks.empty());
    EXPECT_TRUE(rank.isPristine());
}

TEST(CrashRecovery, SnapshotRestoreRoundTrips)
{
    PmRank rank = freshRank(6);
    const RankSnapshot snap = rank.snapshot();

    Rng rng(7);
    std::uint8_t data[blockBytes];
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    rank.writeBlock(3, data);
    rank.corruptByte(2, 40, 1, 0xFF);
    rank.failChip(5, rng);
    ASSERT_FALSE(rank.isPristine());

    rank.restore(snap);
    EXPECT_TRUE(rank.isPristine());
    std::uint8_t out[blockBytes], golden[blockBytes];
    const auto res = rank.readBlock(3, out);
    EXPECT_EQ(res.path, ReadPath::Clean);
    rank.goldenBlock(3, golden);
    EXPECT_EQ(std::memcmp(out, golden, blockBytes), 0);
}

TEST(CrashRecovery, SparseTornWriteSettlesOnOldOrNewAtomically)
{
    // One bit of intent in chip 2's beat, no code-bit delta drained
    // (mid-EUR-coalesce cut). Chip 2's stale BCH rolls the bit back in
    // phase 1; the RS tier may then legitimately roll it *forward*
    // again (the new codeword is one symbol away). Either answer is
    // atomic — what is forbidden is a mix or an unreported loss.
    PmRank rank = freshRank(8);
    const unsigned block = 37;
    std::uint8_t oldv[blockBytes], newv[blockBytes];
    rank.goldenBlock(block, oldv);
    std::memcpy(newv, oldv, blockBytes);
    newv[2 * chipBeatBytes + 4] ^= 0x20;

    rank.applyTornWrite(block, newv, allChipsMask(rank), 0);
    const auto report = rank.crashRecovery();
    EXPECT_TRUE(report.ueBlocks.empty());
    EXPECT_GT(report.vlewsCorrected, 0u); // the BCH rollback happened
    EXPECT_TRUE(readsAs(rank, block, oldv) ||
                readsAs(rank, block, newv));
}

TEST(CrashRecovery, FullyAppliedDataResolvesToNewValue)
{
    // Dense rewrite where every chip latched its data but no chip
    // drained its code bits: the RS word is consistent at the new
    // value, so recovery settles on NEW and re-encodes the code.
    PmRank rank = freshRank(9);
    const unsigned block = 65;
    std::uint8_t newv[blockBytes];
    Rng rng(10);
    for (auto &b : newv)
        b = static_cast<std::uint8_t>(rng.next() & 0xFF);

    rank.applyTornWrite(block, newv, allChipsMask(rank), 0);
    const auto report = rank.crashRecovery();
    EXPECT_TRUE(report.ueBlocks.empty());
    EXPECT_TRUE(readsAs(rank, block, newv));
    // The span's code bits were re-encoded: subsequent reads and a
    // scrub both see a consistent rank.
    const auto scrub = rank.bootScrub();
    EXPECT_FALSE(scrub.uncorrectable);
}

TEST(CrashRecovery, TornWritePlusCompleteWriteViaSamePath)
{
    // code_mask == data_mask == all chips is exactly a completed
    // write: recovery is a no-op and the block reads back new.
    PmRank rank = freshRank(11);
    const unsigned block = 90;
    std::uint8_t newv[blockBytes];
    Rng rng(12);
    for (auto &b : newv)
        b = static_cast<std::uint8_t>(rng.next() & 0xFF);

    const std::uint16_t all = allChipsMask(rank);
    rank.applyTornWrite(block, newv, all, all);
    EXPECT_TRUE(rank.isPristine());
    const auto report = rank.crashRecovery();
    EXPECT_TRUE(report.ueBlocks.empty());
    EXPECT_TRUE(readsAs(rank, block, newv));
}

TEST(CrashRecovery, NeverSilentGarbageUnderRandomTears)
{
    // Property sweep: random torn writes (legal masks only) followed
    // by recovery must leave every block reading as its old value, its
    // intended new value, or a reported UE.
    Rng rng(13);
    for (unsigned trial = 0; trial < 25; ++trial) {
        PmRank rank = freshRank(1000 + trial);
        const unsigned block =
            static_cast<unsigned>(rng.below(rank.blocks()));
        std::uint8_t oldv[blockBytes], newv[blockBytes];
        rank.goldenBlock(block, oldv);
        for (unsigned b = 0; b < blockBytes; ++b)
            newv[b] = static_cast<std::uint8_t>(
                (rng.next() & 1) ? rng.next() & 0xFF : oldv[b]);

        const std::uint16_t all = allChipsMask(rank);
        std::uint16_t data_mask, code_mask;
        if (rng.next() & 1) {
            data_mask = static_cast<std::uint16_t>(rng.next() & all);
            code_mask = 0;
        } else {
            data_mask = all;
            code_mask = static_cast<std::uint16_t>(rng.next() & all);
        }
        rank.applyTornWrite(block, newv, data_mask, code_mask);
        rank.crashRecovery();

        std::uint8_t out[blockBytes];
        const auto res = rank.readBlock(block, out);
        if (res.path == ReadPath::Failed) {
            EXPECT_EQ(res.outcome, RecoveryOutcome::DetectedUE);
            continue;
        }
        const bool is_old = std::memcmp(out, oldv, blockBytes) == 0;
        const bool is_new = std::memcmp(out, newv, blockBytes) == 0;
        EXPECT_TRUE(is_old || is_new)
            << "trial " << trial << " block " << block
            << " returned silent garbage";
    }
}

TEST(CrashRecovery, ConcurrentChipKillStillRebuildsOrReports)
{
    // A chip dies in the same power event that tore a write: the dead
    // chip must be rebuilt via RS erasure everywhere it can be, and
    // every block still reads old/new/UE.
    PmRank rank = freshRank(14);
    Rng rng(15);
    const unsigned block = 50;
    std::uint8_t oldv[blockBytes], newv[blockBytes];
    rank.goldenBlock(block, oldv);
    std::memcpy(newv, oldv, blockBytes);
    newv[0] ^= 0x01; // sparse intent in chip 0

    rank.applyTornWrite(block, newv, allChipsMask(rank), 0);
    rank.failChip(4, rng);
    const auto report = rank.crashRecovery();
    ASSERT_EQ(report.deadChips.size(), 1u);
    EXPECT_EQ(report.deadChips[0], 4u);

    std::uint8_t out[blockBytes], ref[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto res = rank.readBlock(b, out);
        if (res.path == ReadPath::Failed)
            continue;
        if (b == block) {
            const bool is_old =
                std::memcmp(out, oldv, blockBytes) == 0;
            const bool is_new =
                std::memcmp(out, newv, blockBytes) == 0;
            EXPECT_TRUE(is_old || is_new) << "block " << b;
        } else {
            rank.goldenBlock(b, ref);
            EXPECT_EQ(std::memcmp(out, ref, blockBytes), 0)
                << "block " << b;
        }
    }
}

TEST(CrashDegraded, TornWriteRecoversOrReportsInDegradedMode)
{
    DegradedRank rank(testBlocks);
    Rng rng(16);
    rank.initialize(rng);
    const DegradedSnapshot snap = rank.snapshot();

    for (unsigned trial = 0; trial < 10; ++trial) {
        rank.restore(snap);
        const unsigned block =
            static_cast<unsigned>(rng.below(rank.blocks()));
        std::uint8_t oldv[blockBytes], newv[blockBytes];
        rank.goldenBlock(block, oldv);
        const bool sparse = (trial & 1) != 0;
        std::memcpy(newv, oldv, blockBytes);
        if (sparse) {
            newv[5] ^= 0x08;
        } else {
            for (auto &b : newv)
                b = static_cast<std::uint8_t>(rng.next() & 0xFF);
        }

        rank.applyTornWrite(block, newv, /*code_applied=*/false);
        const auto outcome = rank.scrub();

        std::uint8_t out[blockBytes];
        const auto res = rank.readBlock(block, out);
        if (res.failed) {
            EXPECT_EQ(outcome, RecoveryOutcome::DetectedUE);
            EXPECT_TRUE(rank.isPoisoned(block));
            continue;
        }
        const bool is_old = std::memcmp(out, oldv, blockBytes) == 0;
        const bool is_new = std::memcmp(out, newv, blockBytes) == 0;
        EXPECT_TRUE(is_old || is_new) << "trial " << trial;
        // Sparse tears fit the BCH budget and must roll back.
        if (sparse)
            EXPECT_TRUE(is_old);
    }
}

} // namespace
} // namespace nvck
