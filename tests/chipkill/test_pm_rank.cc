#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/pm_rank.hh"

namespace nvck {
namespace {

constexpr unsigned testBlocks = 128; // 4 VLEWs per chip

PmRank
freshRank(std::uint64_t seed = 1, unsigned blocks = testBlocks)
{
    PmRank rank(blocks);
    Rng rng(seed);
    rank.initialize(rng);
    return rank;
}

TEST(PmRank, Geometry)
{
    PmRank rank(testBlocks);
    EXPECT_EQ(rank.chips(), 9u);
    EXPECT_EQ(rank.vlewsPerChip(), testBlocks / 32);
    EXPECT_NEAR(rank.params().totalStorageCost(), 0.27, 0.005);
}

TEST(PmRank, CleanReadsEverywhere)
{
    PmRank rank = freshRank();
    std::uint8_t out[blockBytes], golden[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto res = rank.readBlock(b, out);
        EXPECT_EQ(res.path, ReadPath::Clean);
        EXPECT_TRUE(res.dataCorrect);
        rank.goldenBlock(b, golden);
        EXPECT_EQ(std::memcmp(out, golden, blockBytes), 0);
    }
}

TEST(PmRank, XorWritePathKeepsEverythingConsistent)
{
    PmRank rank = freshRank(7);
    Rng rng(99);
    std::uint8_t data[blockBytes], out[blockBytes];
    for (int i = 0; i < 50; ++i) {
        const unsigned block =
            static_cast<unsigned>(rng.below(rank.blocks()));
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
        rank.writeBlock(block, data);
        const auto res = rank.readBlock(block, out);
        ASSERT_EQ(res.path, ReadPath::Clean);
        ASSERT_EQ(std::memcmp(out, data, blockBytes), 0);
    }
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, RuntimeRsCorrectsSmallErrors)
{
    PmRank rank = freshRank(11);
    Rng rng(3);
    // ~2 bit errors in block 5's RS word: flip two bits in two chips.
    // (Direct surgical injection via a tiny RBER over the whole rank
    // would be nondeterministic; use error injection and scan.)
    rank.injectErrors(rng, 2e-5);
    std::uint8_t out[blockBytes];
    unsigned accepted = 0, clean = 0;
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto res = rank.readBlock(b, out);
        ASSERT_TRUE(res.dataCorrect) << "block " << b;
        if (res.path == ReadPath::RsAccepted) {
            ASSERT_LE(res.rsCorrections, 2u);
            ++accepted;
        } else if (res.path == ReadPath::Clean) {
            ++clean;
        }
    }
    EXPECT_GT(accepted, 0u);
    EXPECT_GT(clean, 0u);
}

TEST(PmRank, VlewFallbackForDenseErrors)
{
    // At boot-level RBER many blocks carry >2 byte errors: the read
    // path must fall back to VLEW correction and still return correct
    // data.
    PmRank rank = freshRank(13);
    Rng rng(5);
    rank.injectErrors(rng, 1e-3);
    std::uint8_t out[blockBytes];
    unsigned fallbacks = 0;
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto res = rank.readBlock(b, out);
        ASSERT_NE(res.path, ReadPath::Failed) << "block " << b;
        ASSERT_TRUE(res.dataCorrect) << "block " << b;
        if (res.path == ReadPath::VlewFallback)
            ++fallbacks;
    }
    EXPECT_GT(fallbacks, 0u);
}

TEST(PmRank, BootScrubCleansBootRber)
{
    // The headline boot-time claim: after a week..year without
    // refresh (RBER 1e-3), scrubbing restores every stored bit.
    PmRank rank = freshRank(17);
    Rng rng(7);
    const auto injected = rank.injectErrors(rng, 1e-3);
    ASSERT_GT(injected, 0u);
    EXPECT_FALSE(rank.isPristine());

    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable);
    EXPECT_EQ(report.bitsCorrected, injected);
    EXPECT_EQ(report.chipsRecovered, 0u);
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, BootScrubRecoversDataChipFailure)
{
    PmRank rank = freshRank(19);
    Rng rng(9);
    rank.failChip(3, rng);
    rank.injectErrors(rng, 1e-4); // residual bit errors elsewhere

    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable);
    EXPECT_EQ(report.chipsRecovered, 1u);
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, BootScrubRebuildsParityChip)
{
    PmRank rank = freshRank(23);
    Rng rng(11);
    rank.failChip(8, rng); // the parity chip
    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable);
    EXPECT_TRUE(report.parityChipRebuilt);
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, DoubleChipFailureIsUncorrectable)
{
    PmRank rank = freshRank(29);
    Rng rng(13);
    rank.failChip(1, rng);
    rank.failChip(6, rng);
    const auto report = rank.bootScrub();
    EXPECT_TRUE(report.uncorrectable);
}

TEST(PmRank, RuntimeChipFailureRecoveredThroughErasures)
{
    // Fig 9's second purpose: after VLEWs absorb the bit errors, the
    // per-block RS budget is free to erasure-correct a dead chip.
    PmRank rank = freshRank(31);
    Rng rng(15);
    rank.failChip(2, rng);
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); b += 7) {
        const auto res = rank.readBlock(b, out);
        ASSERT_EQ(res.path, ReadPath::ChipRecovered) << "block " << b;
        ASSERT_TRUE(res.dataCorrect) << "block " << b;
    }
}

TEST(PmRank, WritesLandOnDamagedCellsWithoutSpreading)
{
    // The XOR-sum write must preserve the pre-existing error pattern
    // exactly (errors propagate one-to-one, Section V-D); the next
    // read corrects them.
    PmRank rank = freshRank(37);
    Rng rng(17);
    rank.injectErrors(rng, 5e-4);

    Rng data_rng(18);
    std::uint8_t data[blockBytes], out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); b += 11) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(data_rng.next() & 0xFF);
        rank.writeBlock(b, data);
        const auto res = rank.readBlock(b, out);
        ASSERT_NE(res.path, ReadPath::Failed);
        ASSERT_EQ(std::memcmp(out, data, blockBytes), 0)
            << "block " << b;
    }
    // A scrub afterwards must still restore pristine state: the writes
    // did not corrupt or amplify anything.
    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable);
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, DisabledBlockKeepsVlewConsistent)
{
    PmRank rank = freshRank(41);
    rank.disableBlock(10);
    EXPECT_TRUE(rank.isDisabled(10));
    EXPECT_FALSE(rank.isDisabled(11));
    // Neighbouring blocks of the same VLEW remain readable, and the
    // rank remains fully consistent.
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < 32; ++b) {
        if (b == 10)
            continue;
        const auto res = rank.readBlock(b, out);
        EXPECT_EQ(res.path, ReadPath::Clean);
        EXPECT_TRUE(res.dataCorrect);
    }
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, DisabledBlockSurvivesScrubAndErrors)
{
    PmRank rank = freshRank(43);
    rank.disableBlock(33);
    Rng rng(19);
    rank.injectErrors(rng, 1e-3);
    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable);
    EXPECT_TRUE(rank.isPristine());
}

TEST(PmRank, ScrubTimeMatchesPaperEstimate)
{
    // Section V-B: scrubbing a terabyte takes under 1.5 minutes.
    const double tb = 1e12;
    const double ddr4_bw = 2400e6 * 8; // 19.2 GB/s
    const double seconds = PmRank::scrubSeconds(tb, ddr4_bw);
    EXPECT_LT(seconds, 90.0);
    EXPECT_GT(seconds, 30.0);
}

TEST(PmRank, ThresholdZeroForcesVlewPathForAnyError)
{
    PmRank rank = freshRank(47);
    Rng rng(21);
    rank.injectErrors(rng, 1e-4);
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto res = rank.readBlock(b, out, /*threshold=*/0);
        ASSERT_TRUE(res.dataCorrect);
        // With threshold 0 nothing may be RS-accepted.
        ASSERT_NE(res.path, ReadPath::RsAccepted);
    }
}

TEST(PmRank, GoldenBlockMatchesWrittenData)
{
    PmRank rank = freshRank(53);
    std::uint8_t data[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    rank.writeBlock(5, data);
    std::uint8_t golden[blockBytes];
    rank.goldenBlock(5, golden);
    EXPECT_EQ(std::memcmp(golden, data, blockBytes), 0);
}

} // namespace
} // namespace nvck
