#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/pm_rank.hh"

namespace nvck {
namespace {

/**
 * Property sweep over (RBER, acceptance threshold): whatever the
 * channel and policy, reads never return wrong data silently, and a
 * scrub always restores the pristine state as long as no chip has
 * died. These are the scheme's two safety invariants.
 */
struct PropertyPoint
{
    double rber;
    unsigned threshold;
};

class RankProperty : public ::testing::TestWithParam<PropertyPoint>
{};

TEST_P(RankProperty, NoSilentCorruptionAndScrubRestores)
{
    const auto [rber, threshold] = GetParam();
    PmRank rank(160);
    Rng rng(static_cast<std::uint64_t>(rber * 1e9) + threshold);
    rank.initialize(rng);

    Rng data_rng(threshold + 101);
    std::uint8_t data[blockBytes], out[blockBytes];
    for (int round = 0; round < 4; ++round) {
        rank.injectErrors(rng, rber);
        // Mixed reads and writes.
        for (unsigned b = 0; b < rank.blocks(); b += 3) {
            const auto res = rank.readBlock(b, out, threshold);
            if (res.path != ReadPath::Failed) {
                ASSERT_TRUE(res.dataCorrect)
                    << "SDC at block " << b << " rber=" << rber
                    << " threshold=" << threshold;
            }
        }
        for (unsigned b = 1; b < rank.blocks(); b += 17) {
            for (auto &byte : data)
                byte =
                    static_cast<std::uint8_t>(data_rng.next() & 0xFF);
            rank.writeBlock(b, data);
        }
    }
    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable);
    EXPECT_TRUE(rank.isPristine());
}

INSTANTIATE_TEST_SUITE_P(
    RberThresholdGrid, RankProperty,
    ::testing::Values(PropertyPoint{1e-5, 2}, PropertyPoint{1e-4, 2},
                      PropertyPoint{2e-4, 2}, PropertyPoint{1e-3, 2},
                      PropertyPoint{2e-4, 0}, PropertyPoint{2e-4, 1},
                      PropertyPoint{2e-4, 3}, PropertyPoint{2e-4, 4},
                      PropertyPoint{1e-3, 4}, PropertyPoint{1e-3, 0}));

/** Every data chip position must be recoverable, not just a sample. */
class ChipFailure : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ChipFailure, AnyChipRecoversAtBoot)
{
    const unsigned chip = GetParam();
    PmRank rank(96);
    Rng rng(chip * 7 + 1);
    rank.initialize(rng);
    rank.failChip(chip, rng);
    const auto report = rank.bootScrub();
    EXPECT_FALSE(report.uncorrectable) << "chip " << chip;
    EXPECT_TRUE(rank.isPristine()) << "chip " << chip;
}

TEST_P(ChipFailure, AnyChipRecoversAtRuntime)
{
    const unsigned chip = GetParam();
    PmRank rank(96);
    Rng rng(chip * 13 + 5);
    rank.initialize(rng);
    rank.failChip(chip, rng);
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); b += 13) {
        const auto res = rank.readBlock(b, out);
        ASSERT_NE(res.path, ReadPath::Failed)
            << "chip " << chip << " block " << b;
        ASSERT_TRUE(res.dataCorrect)
            << "chip " << chip << " block " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(AllNineChips, ChipFailure,
                         ::testing::Range(0u, 9u));

/** Write-read round trips must hold for any block position. */
class BlockSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(BlockSweep, RoundTripAtEveryVlewOffset)
{
    // Cover block offsets 0, 1, 30, 31 within a VLEW and blocks in
    // different VLEWs.
    const unsigned block = GetParam();
    PmRank rank(96);
    Rng rng(3);
    rank.initialize(rng);
    std::uint8_t data[blockBytes], out[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        data[i] = static_cast<std::uint8_t>(block * 31 + i);
    rank.writeBlock(block, data);
    EXPECT_TRUE(rank.isPristine());
    const auto res = rank.readBlock(block, out);
    EXPECT_EQ(res.path, ReadPath::Clean);
    EXPECT_EQ(std::memcmp(out, data, blockBytes), 0);
}

INSTANTIATE_TEST_SUITE_P(VlewOffsets, BlockSweep,
                         ::testing::Values(0u, 1u, 30u, 31u, 32u, 63u,
                                           64u, 95u));

TEST(RankProperties, RepeatedWritesNeverDriftTheCode)
{
    // A thousand XOR-delta updates must leave code bits exactly equal
    // to a from-scratch encode (no incremental drift).
    PmRank rank(32);
    Rng rng(9);
    rank.initialize(rng);
    std::uint8_t data[blockBytes];
    for (int w = 0; w < 1000; ++w) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
        rank.writeBlock(static_cast<unsigned>(rng.below(32)), data);
    }
    EXPECT_TRUE(rank.isPristine());
}

TEST(RankProperties, InjectedErrorCountIsExact)
{
    PmRank rank(96);
    Rng rng(11);
    rank.initialize(rng);
    const auto injected = rank.injectErrors(rng, 1e-3);
    const auto report = rank.bootScrub();
    ASSERT_FALSE(report.uncorrectable);
    // Scrub must have corrected exactly what was injected.
    EXPECT_EQ(report.bitsCorrected, injected);
}

} // namespace
} // namespace nvck
