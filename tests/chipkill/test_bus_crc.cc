#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/pm_rank.hh"

namespace nvck {
namespace {

TEST(BusCrc, RetransmitsKeepWritesIntact)
{
    // Paper footnote 4: Write-CRC lets chips detect I/O errors and
    // request retransmission, so a noisy bus never corrupts stored
    // data.
    PmRank rank(64);
    Rng rng(31);
    rank.initialize(rng);
    rank.setBusFaultModel(5e-3, /*crc_enabled=*/true, 77);

    Rng data_rng(32);
    std::uint8_t data[blockBytes], out[blockBytes];
    for (int w = 0; w < 60; ++w) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(data_rng.next() & 0xFF);
        const unsigned block = static_cast<unsigned>(w % 64);
        rank.writeBlock(block, data);
        const auto res = rank.readBlock(block, out);
        ASSERT_EQ(res.path, ReadPath::Clean);
        ASSERT_EQ(std::memcmp(out, data, blockBytes), 0);
    }
    EXPECT_GT(rank.crcRetries(), 0u);
    EXPECT_TRUE(rank.isPristine());
}

TEST(BusCrc, WithoutCrcTheBusSilentlyCorrupts)
{
    PmRank rank(64);
    Rng rng(33);
    rank.initialize(rng);
    rank.setBusFaultModel(5e-3, /*crc_enabled=*/false, 78);

    Rng data_rng(34);
    std::uint8_t data[blockBytes], out[blockBytes];
    unsigned wrong = 0;
    for (int w = 0; w < 120; ++w) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(data_rng.next() & 0xFF);
        const unsigned block = static_cast<unsigned>(w % 64);
        rank.writeBlock(block, data);
        const auto res = rank.readBlock(block, out);
        // The chip's own ECC was updated consistently with the
        // corrupted payload, so the corruption is invisible to the
        // rank-level codes: silent data corruption vs the intent.
        if (std::memcmp(out, data, blockBytes) != 0) {
            ++wrong;
            EXPECT_FALSE(res.dataCorrect);
        }
    }
    EXPECT_GT(wrong, 0u);
    EXPECT_EQ(rank.crcRetries(), 0u);
}

TEST(BusCrc, CleanBusNeverRetries)
{
    PmRank rank(64);
    Rng rng(35);
    rank.initialize(rng);
    rank.setBusFaultModel(0.0, true, 1);
    std::uint8_t data[blockBytes] = {9, 9, 9};
    rank.writeBlock(0, data);
    EXPECT_EQ(rank.crcRetries(), 0u);
    EXPECT_TRUE(rank.isPristine());
}

} // namespace
} // namespace nvck
