#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <set>

#include "chipkill/scrub.hh"
#include "chipkill/wear.hh"

namespace nvck {
namespace {

TEST(StartGap, MappingIsAlwaysABijection)
{
    StartGapMapper map(40, 3);
    for (int w = 0; w < 500; ++w) {
        std::set<unsigned> frames;
        for (unsigned l = 0; l < map.logicalBlocks(); ++l) {
            const unsigned f = map.physical(l);
            ASSERT_LT(f, map.frames());
            ASSERT_NE(f, map.gapFrame());
            ASSERT_TRUE(frames.insert(f).second)
                << "two logical blocks share frame " << f;
        }
        map.onWrite();
    }
}

TEST(StartGap, MovesEveryIntervalWrites)
{
    StartGapMapper map(16, 5);
    unsigned moves = 0;
    for (int w = 0; w < 100; ++w)
        if (map.onWrite())
            ++moves;
    EXPECT_EQ(moves, 20u);
}

TEST(StartGap, GapVisitsEveryFrame)
{
    StartGapMapper map(8, 1);
    std::set<unsigned> visited;
    visited.insert(map.gapFrame());
    for (int w = 0; w < 9; ++w) {
        map.onWrite();
        visited.insert(map.gapFrame());
    }
    EXPECT_EQ(visited.size(), map.frames());
}

TEST(StartGap, MoveReportsDonorAndGap)
{
    StartGapMapper map(4, 1);
    const unsigned old_gap = map.gapFrame();
    const auto move = map.onWrite();
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->to, old_gap);
    EXPECT_EQ(move->from, map.gapFrame());
}

TEST(WearLevel, DataSurvivesMigrations)
{
    WearLevelledRank rank(60, 4, 11);
    Rng rng(12);
    std::vector<std::array<std::uint8_t, blockBytes>> truth(
        rank.blocks());
    // Populate all logical blocks.
    for (unsigned l = 0; l < rank.blocks(); ++l) {
        for (auto &byte : truth[l])
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
        rank.writeBlock(l, truth[l].data());
    }
    // Hammer one hot block to force many gap movements.
    for (int w = 0; w < 300; ++w) {
        truth[7][0] = static_cast<std::uint8_t>(w & 0xFF);
        rank.writeBlock(7, truth[7].data());
    }
    EXPECT_GT(rank.migrations(), 50u);
    std::uint8_t out[blockBytes];
    for (unsigned l = 0; l < rank.blocks(); ++l) {
        const auto res = rank.readBlock(l, out);
        ASSERT_NE(res.path, ReadPath::Failed);
        ASSERT_EQ(std::memcmp(out, truth[l].data(), blockBytes), 0)
            << "logical block " << l;
    }
}

TEST(WearLevel, HotBlockWearSpreads)
{
    // Without leveling a single hot block would concentrate all wear
    // in one frame (imbalance = frames). With start-gap the hot
    // frame's share shrinks as the mapping rotates.
    WearLevelledRank rank(30, 4, 13);
    std::uint8_t data[blockBytes] = {};
    for (int w = 0; w < 2000; ++w) {
        data[0] = static_cast<std::uint8_t>(w);
        rank.writeBlock(3, data);
    }
    // Perfect leveling would be 1.0; a pathological mapping would be
    // ~frames/3 given migration writes. Expect meaningful spreading.
    EXPECT_LT(rank.wearImbalance(),
              static_cast<double>(rank.blocks()) / 3.0);
    // Every frame must have absorbed some writes.
    for (unsigned f = 0; f <= rank.blocks(); ++f)
        EXPECT_GT(rank.frameWrites()[f], 0u) << "frame " << f;
}

TEST(WearLevel, SurvivesErrorsDuringMigration)
{
    WearLevelledRank rank(28, 3, 17);
    Rng rng(18);
    std::uint8_t data[blockBytes] = {};
    for (int w = 0; w < 200; ++w) {
        data[1] = static_cast<std::uint8_t>(w);
        rank.writeBlock(w % rank.blocks(), data);
        if (w % 20 == 19)
            rank.rank().injectErrors(rng, 1e-4);
    }
    std::uint8_t out[blockBytes];
    const auto res = rank.readBlock(5, out);
    EXPECT_NE(res.path, ReadPath::Failed);
}

TEST(EccRotation, RoundTripsAcrossEpochs)
{
    EccRotation rot(264);
    Rng rng(5);
    BitVec code(264);
    code.randomize(rng);
    for (int epoch = 0; epoch < 40; ++epoch) {
        const BitVec physical = rot.rotate(code);
        EXPECT_EQ(rot.unrotate(physical), code) << "epoch " << epoch;
        rot.nextEpoch();
    }
}

TEST(EccRotation, PositionsShiftEachEpoch)
{
    EccRotation rot(264);
    const unsigned before = rot.position(0);
    rot.nextEpoch();
    EXPECT_NE(rot.position(0), before);
}

TEST(EccRotation, EveryCellEventuallyHostsCodeBitZero)
{
    // The point of rotation [88]: over epochs, wear from code bit 0
    // spreads across many physical cells.
    EccRotation rot(264);
    std::set<unsigned> cells;
    for (int epoch = 0; epoch < 264; ++epoch) {
        cells.insert(rot.position(0));
        rot.nextEpoch();
    }
    EXPECT_GT(cells.size(), 200u);
}

TEST(WearOut, StuckBitsDetectedByWriteVerify)
{
    PmRank rank(64);
    Rng rng(21);
    rank.initialize(rng);
    // Wear out three cells in block 12's beats.
    rank.setStuckBit(0, 12 * chipBeatBytes + 2, 5, true);
    rank.setStuckBit(3, 12 * chipBeatBytes + 7, 0, false);
    rank.setStuckBit(8, 12 * chipBeatBytes + 1, 3, true);

    std::uint8_t data[blockBytes];
    Rng data_rng(22);
    unsigned max_bad = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(data_rng.next() & 0xFF);
        max_bad = std::max(max_bad, rank.writeVerify(12, data));
    }
    // Each stuck cell disagrees with the intended value for half of
    // random data; across 8 attempts at least one write must see >= 1
    // bad bit, and never more than the three worn cells.
    EXPECT_GE(max_bad, 1u);
    EXPECT_LE(max_bad, 3u);

    // The stuck bits are still correctable by the runtime path.
    std::uint8_t out[blockBytes];
    const auto res = rank.readBlock(12, out);
    EXPECT_NE(res.path, ReadPath::Failed);
    EXPECT_TRUE(res.dataCorrect);
}

TEST(WearOut, CleanBlockVerifiesZeroBadBits)
{
    PmRank rank(64);
    Rng rng(23);
    rank.initialize(rng);
    std::uint8_t data[blockBytes] = {1, 2, 3};
    EXPECT_EQ(rank.writeVerify(20, data), 0u);
}

TEST(WearOut, DisableBlockAfterWearOutDetection)
{
    // The full Section V-E flow: detect a worn block via write-verify,
    // then disable it; the VLEW stays consistent for its neighbours.
    PmRank rank(64);
    Rng rng(25);
    rank.initialize(rng);
    for (unsigned bit = 0; bit < 6; ++bit)
        rank.setStuckBit(1, 30 * chipBeatBytes + bit, bit, true);

    std::uint8_t data[blockBytes];
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const unsigned bad = rank.writeVerify(30, data);
    if (bad > 0)
        rank.disableBlock(30);
    EXPECT_TRUE(rank.isDisabled(30) || bad == 0);

    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < 32; ++b) {
        if (rank.isDisabled(b))
            continue;
        const auto res = rank.readBlock(b, out);
        EXPECT_TRUE(res.dataCorrect) << "block " << b;
    }
}

// Wear-aware patrol ordering ------------------------------------------

TEST(WearPatrol, OrderIsHottestFirstPermutationUnderRandomHistograms)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        const unsigned spans = 1 + static_cast<unsigned>(rng.below(64));
        std::vector<std::uint64_t> wear(spans);
        for (auto &w : wear)
            w = rng.below(1 + rng.below(1000));

        const std::vector<unsigned> order = wearPatrolOrder(wear);
        ASSERT_EQ(order.size(), spans);
        // A permutation: every span visited exactly once per round.
        std::vector<unsigned> sorted = order;
        std::sort(sorted.begin(), sorted.end());
        for (unsigned i = 0; i < spans; ++i)
            ASSERT_EQ(sorted[i], i) << "trial " << trial;
        // Hottest-first, exact integer comparison; ties break toward
        // the lower address so the order is a pure function of wear.
        for (unsigned i = 1; i < spans; ++i) {
            const unsigned a = order[i - 1], b = order[i];
            ASSERT_TRUE(wear[a] > wear[b] ||
                        (wear[a] == wear[b] && a < b))
                << "trial " << trial << " position " << i;
        }
        // The first entry is a maximum of the histogram.
        ASSERT_EQ(wear[order[0]],
                  *std::max_element(wear.begin(), wear.end()));
    }
}

TEST(WearPatrol, SpanWritesAggregateFrameHistogram)
{
    WearLevelledRank rank(60, 4, 41);
    std::uint8_t data[blockBytes] = {};
    for (int w = 0; w < 500; ++w) {
        data[0] = static_cast<std::uint8_t>(w);
        rank.writeBlock(static_cast<unsigned>(w) % 7, data);
    }
    const auto spans = rank.spanWrites(32);
    ASSERT_EQ(spans.size(), (rank.rank().blocks() + 31) / 32);
    const std::uint64_t frame_total = std::accumulate(
        rank.frameWrites().begin(), rank.frameWrites().end(),
        std::uint64_t{0});
    const std::uint64_t span_total =
        std::accumulate(spans.begin(), spans.end(), std::uint64_t{0});
    EXPECT_EQ(span_total, frame_total);
    // The hammered logical blocks start in span 0; even with gap
    // migration the hot span must rank first.
    EXPECT_EQ(wearPatrolOrder(spans)[0], 0u);
}

TEST(WearPatrol, ScrubResultsAreVisitOrderInvariant)
{
    // Patrol reordering must never change what a full round corrects:
    // scrubbing every (chip, span) word in address order and in a
    // wear-ranked permutation yields bit-identical media.
    Rng rng(43);
    PmRank addr_rank(128);
    addr_rank.initialize(rng);
    for (int i = 0; i < 40; ++i) {
        addr_rank.corruptByte(
            static_cast<unsigned>(rng.below(addr_rank.chips())),
            static_cast<unsigned>(rng.below(addr_rank.blocks())),
            static_cast<unsigned>(rng.below(chipBeatBytes)),
            static_cast<std::uint8_t>(1u << rng.below(8)));
    }
    PmRank wear_rank(128);
    wear_rank.restore(addr_rank.snapshot());

    const unsigned spans = addr_rank.blocks() / 32;
    std::vector<std::uint64_t> hist(spans);
    for (auto &w : hist)
        w = rng.below(500);
    const std::vector<unsigned> ranked = wearPatrolOrder(hist);

    ScrubEngine scrub;
    std::uint64_t addr_bits = 0, wear_bits = 0;
    for (unsigned s = 0; s < spans; ++s) {
        for (unsigned c = 0; c < addr_rank.chips(); ++c) {
            const int a = scrub.scrubWord(addr_rank, c, s).corrections;
            const int b =
                scrub.scrubWord(wear_rank, c, ranked[s]).corrections;
            ASSERT_GE(a, 0);
            ASSERT_GE(b, 0);
            addr_bits += static_cast<unsigned>(a);
            wear_bits += static_cast<unsigned>(b);
        }
    }
    EXPECT_EQ(addr_bits, wear_bits);
    EXPECT_GT(addr_bits, 0u);
    EXPECT_TRUE(addr_rank.isPristine());
    EXPECT_TRUE(wear_rank.isPristine());
    EXPECT_EQ(addr_rank.snapshot().chipStore,
              wear_rank.snapshot().chipStore);
}

TEST(WearPatrol, PatrolAddressingComposesWithStartGapAndRotation)
{
    // A patrol round over wear-ranked spans, addressed through the
    // start-gap mapping with rotated code layout, must visit every
    // resident logical block exactly once and read it back correct.
    WearLevelledRank rank(90, 3, 53);
    Rng rng(54);
    std::vector<std::array<std::uint8_t, blockBytes>> truth(
        rank.blocks());
    for (unsigned l = 0; l < rank.blocks(); ++l) {
        for (auto &byte : truth[l])
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
        rank.writeBlock(l, truth[l].data());
    }
    for (int w = 0; w < 400; ++w) {
        truth[11][0] = static_cast<std::uint8_t>(w);
        rank.writeBlock(11, truth[11].data());
    }

    EccRotation rot(264);
    const std::vector<unsigned> order =
        wearPatrolOrder(rank.spanWrites(32));

    std::set<unsigned> visited;
    std::uint8_t out[blockBytes];
    for (const unsigned span : order) {
        // Rotation epochs advance per patrol span; the code layout
        // change must stay invisible to the logical view.
        Rng code_rng(span + 1);
        BitVec code(264);
        code.randomize(code_rng);
        EXPECT_EQ(rot.unrotate(rot.rotate(code)), code);
        rot.nextEpoch();

        for (unsigned l = 0; l < rank.blocks(); ++l) {
            if (rank.gapMapper().physical(l) / 32 != span)
                continue;
            ASSERT_TRUE(visited.insert(l).second) << l;
            const auto res = rank.readBlock(l, out);
            ASSERT_NE(res.path, ReadPath::Failed);
            ASSERT_EQ(std::memcmp(out, truth[l].data(), blockBytes), 0)
                << "logical block " << l;
        }
    }
    EXPECT_EQ(visited.size(), rank.blocks());
}

} // namespace
} // namespace nvck
