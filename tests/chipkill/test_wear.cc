#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "chipkill/wear.hh"

namespace nvck {
namespace {

TEST(StartGap, MappingIsAlwaysABijection)
{
    StartGapMapper map(40, 3);
    for (int w = 0; w < 500; ++w) {
        std::set<unsigned> frames;
        for (unsigned l = 0; l < map.logicalBlocks(); ++l) {
            const unsigned f = map.physical(l);
            ASSERT_LT(f, map.frames());
            ASSERT_NE(f, map.gapFrame());
            ASSERT_TRUE(frames.insert(f).second)
                << "two logical blocks share frame " << f;
        }
        map.onWrite();
    }
}

TEST(StartGap, MovesEveryIntervalWrites)
{
    StartGapMapper map(16, 5);
    unsigned moves = 0;
    for (int w = 0; w < 100; ++w)
        if (map.onWrite())
            ++moves;
    EXPECT_EQ(moves, 20u);
}

TEST(StartGap, GapVisitsEveryFrame)
{
    StartGapMapper map(8, 1);
    std::set<unsigned> visited;
    visited.insert(map.gapFrame());
    for (int w = 0; w < 9; ++w) {
        map.onWrite();
        visited.insert(map.gapFrame());
    }
    EXPECT_EQ(visited.size(), map.frames());
}

TEST(StartGap, MoveReportsDonorAndGap)
{
    StartGapMapper map(4, 1);
    const unsigned old_gap = map.gapFrame();
    const auto move = map.onWrite();
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->to, old_gap);
    EXPECT_EQ(move->from, map.gapFrame());
}

TEST(WearLevel, DataSurvivesMigrations)
{
    WearLevelledRank rank(60, 4, 11);
    Rng rng(12);
    std::vector<std::array<std::uint8_t, blockBytes>> truth(
        rank.blocks());
    // Populate all logical blocks.
    for (unsigned l = 0; l < rank.blocks(); ++l) {
        for (auto &byte : truth[l])
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
        rank.writeBlock(l, truth[l].data());
    }
    // Hammer one hot block to force many gap movements.
    for (int w = 0; w < 300; ++w) {
        truth[7][0] = static_cast<std::uint8_t>(w & 0xFF);
        rank.writeBlock(7, truth[7].data());
    }
    EXPECT_GT(rank.migrations(), 50u);
    std::uint8_t out[blockBytes];
    for (unsigned l = 0; l < rank.blocks(); ++l) {
        const auto res = rank.readBlock(l, out);
        ASSERT_NE(res.path, ReadPath::Failed);
        ASSERT_EQ(std::memcmp(out, truth[l].data(), blockBytes), 0)
            << "logical block " << l;
    }
}

TEST(WearLevel, HotBlockWearSpreads)
{
    // Without leveling a single hot block would concentrate all wear
    // in one frame (imbalance = frames). With start-gap the hot
    // frame's share shrinks as the mapping rotates.
    WearLevelledRank rank(30, 4, 13);
    std::uint8_t data[blockBytes] = {};
    for (int w = 0; w < 2000; ++w) {
        data[0] = static_cast<std::uint8_t>(w);
        rank.writeBlock(3, data);
    }
    // Perfect leveling would be 1.0; a pathological mapping would be
    // ~frames/3 given migration writes. Expect meaningful spreading.
    EXPECT_LT(rank.wearImbalance(),
              static_cast<double>(rank.blocks()) / 3.0);
    // Every frame must have absorbed some writes.
    for (unsigned f = 0; f <= rank.blocks(); ++f)
        EXPECT_GT(rank.frameWrites()[f], 0u) << "frame " << f;
}

TEST(WearLevel, SurvivesErrorsDuringMigration)
{
    WearLevelledRank rank(28, 3, 17);
    Rng rng(18);
    std::uint8_t data[blockBytes] = {};
    for (int w = 0; w < 200; ++w) {
        data[1] = static_cast<std::uint8_t>(w);
        rank.writeBlock(w % rank.blocks(), data);
        if (w % 20 == 19)
            rank.rank().injectErrors(rng, 1e-4);
    }
    std::uint8_t out[blockBytes];
    const auto res = rank.readBlock(5, out);
    EXPECT_NE(res.path, ReadPath::Failed);
}

TEST(EccRotation, RoundTripsAcrossEpochs)
{
    EccRotation rot(264);
    Rng rng(5);
    BitVec code(264);
    code.randomize(rng);
    for (int epoch = 0; epoch < 40; ++epoch) {
        const BitVec physical = rot.rotate(code);
        EXPECT_EQ(rot.unrotate(physical), code) << "epoch " << epoch;
        rot.nextEpoch();
    }
}

TEST(EccRotation, PositionsShiftEachEpoch)
{
    EccRotation rot(264);
    const unsigned before = rot.position(0);
    rot.nextEpoch();
    EXPECT_NE(rot.position(0), before);
}

TEST(EccRotation, EveryCellEventuallyHostsCodeBitZero)
{
    // The point of rotation [88]: over epochs, wear from code bit 0
    // spreads across many physical cells.
    EccRotation rot(264);
    std::set<unsigned> cells;
    for (int epoch = 0; epoch < 264; ++epoch) {
        cells.insert(rot.position(0));
        rot.nextEpoch();
    }
    EXPECT_GT(cells.size(), 200u);
}

TEST(WearOut, StuckBitsDetectedByWriteVerify)
{
    PmRank rank(64);
    Rng rng(21);
    rank.initialize(rng);
    // Wear out three cells in block 12's beats.
    rank.setStuckBit(0, 12 * chipBeatBytes + 2, 5, true);
    rank.setStuckBit(3, 12 * chipBeatBytes + 7, 0, false);
    rank.setStuckBit(8, 12 * chipBeatBytes + 1, 3, true);

    std::uint8_t data[blockBytes];
    Rng data_rng(22);
    unsigned max_bad = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(data_rng.next() & 0xFF);
        max_bad = std::max(max_bad, rank.writeVerify(12, data));
    }
    // Each stuck cell disagrees with the intended value for half of
    // random data; across 8 attempts at least one write must see >= 1
    // bad bit, and never more than the three worn cells.
    EXPECT_GE(max_bad, 1u);
    EXPECT_LE(max_bad, 3u);

    // The stuck bits are still correctable by the runtime path.
    std::uint8_t out[blockBytes];
    const auto res = rank.readBlock(12, out);
    EXPECT_NE(res.path, ReadPath::Failed);
    EXPECT_TRUE(res.dataCorrect);
}

TEST(WearOut, CleanBlockVerifiesZeroBadBits)
{
    PmRank rank(64);
    Rng rng(23);
    rank.initialize(rng);
    std::uint8_t data[blockBytes] = {1, 2, 3};
    EXPECT_EQ(rank.writeVerify(20, data), 0u);
}

TEST(WearOut, DisableBlockAfterWearOutDetection)
{
    // The full Section V-E flow: detect a worn block via write-verify,
    // then disable it; the VLEW stays consistent for its neighbours.
    PmRank rank(64);
    Rng rng(25);
    rank.initialize(rng);
    for (unsigned bit = 0; bit < 6; ++bit)
        rank.setStuckBit(1, 30 * chipBeatBytes + bit, bit, true);

    std::uint8_t data[blockBytes];
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const unsigned bad = rank.writeVerify(30, data);
    if (bad > 0)
        rank.disableBlock(30);
    EXPECT_TRUE(rank.isDisabled(30) || bad == 0);

    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < 32; ++b) {
        if (rank.isDisabled(b))
            continue;
        const auto res = rank.readBlock(b, out);
        EXPECT_TRUE(res.dataCorrect) << "block " << b;
    }
}

} // namespace
} // namespace nvck
