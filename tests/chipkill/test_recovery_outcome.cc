/**
 * @file
 * RecoveryOutcome taxonomy coverage: the runtime-read threshold
 * fallback (Fig 9) must never accept an RS proposal above the
 * acceptance threshold, and every recovery verdict must surface
 * through the outcome enum and the recovery.* counters.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/pm_rank.hh"
#include "chipkill/recovery.hh"

namespace nvck {
namespace {

constexpr unsigned testBlocks = 128; // 4 VLEWs per chip

PmRank
freshRank(std::uint64_t seed = 1, unsigned blocks = testBlocks)
{
    PmRank rank(blocks);
    Rng rng(seed);
    rank.initialize(rng);
    return rank;
}

TEST(RecoveryOutcome, NamesEveryVerdict)
{
    EXPECT_STREQ(recoveryOutcomeName(RecoveryOutcome::Corrected),
                 "corrected");
    EXPECT_STREQ(recoveryOutcomeName(RecoveryOutcome::FellBackToVlew),
                 "fell-back-to-vlew");
    EXPECT_STREQ(recoveryOutcomeName(RecoveryOutcome::DetectedUE),
                 "detected-ue");
    EXPECT_STREQ(
        recoveryOutcomeName(RecoveryOutcome::MiscorrectionRisk),
        "miscorrection-risk");
}

TEST(RecoveryOutcome, CountersTallyAndRecord)
{
    RecoveryCounters counters;
    counters.count(RecoveryOutcome::Corrected);
    counters.count(RecoveryOutcome::Corrected);
    counters.count(RecoveryOutcome::MiscorrectionRisk);
    EXPECT_EQ(counters.corrected.value(), 2u);
    EXPECT_EQ(counters.miscorrectionRisk.value(), 1u);
    EXPECT_EQ(counters.fellBackToVlew.value(), 0u);

    StatGroup group("rank");
    counters.record(group);
    EXPECT_EQ(group.values().at("recovery.corrected"), 2.0);
    EXPECT_EQ(group.values().at("recovery.miscorrection_risk"), 1.0);
    EXPECT_EQ(group.values().at("recovery.detected_ue"), 0.0);

    counters.reset();
    EXPECT_EQ(counters.corrected.value(), 0u);
}

TEST(RecoveryOutcome, CleanReadIsCorrected)
{
    PmRank rank = freshRank(21);
    std::uint8_t out[blockBytes];
    const auto res = rank.readBlock(17, out);
    EXPECT_EQ(res.path, ReadPath::Clean);
    EXPECT_EQ(res.outcome, RecoveryOutcome::Corrected);
}

TEST(RecoveryOutcome, WithinThresholdErrorsAreRsAccepted)
{
    PmRank rank = freshRank(22);
    const unsigned block = 9;
    rank.corruptByte(0, block, 3, 0x01);
    rank.corruptByte(4, block, 5, 0x80);
    std::uint8_t out[blockBytes], golden[blockBytes];
    const auto res = rank.readBlock(block, out);
    EXPECT_EQ(res.path, ReadPath::RsAccepted);
    EXPECT_EQ(res.outcome, RecoveryOutcome::Corrected);
    EXPECT_EQ(res.rsCorrections, 2u);
    EXPECT_TRUE(res.dataCorrect);
    rank.goldenBlock(block, golden);
    EXPECT_EQ(std::memcmp(out, golden, blockBytes), 0);
    EXPECT_EQ(rank.recoveryCounters().corrected.value(), 1u);
}

TEST(RecoveryOutcome, OverThresholdErrorsRouteToVlewNeverRs)
{
    // 3 byte errors in distinct chips: within the RS(72,64) t=4 power
    // but above the acceptance threshold of 2, so the read MUST reject
    // the RS proposal (miscorrection risk) and fall back to the VLEWs.
    PmRank rank = freshRank(23);
    const unsigned block = 40;
    rank.corruptByte(1, block, 0, 0x10);
    rank.corruptByte(3, block, 2, 0x02);
    rank.corruptByte(6, block, 7, 0x40);
    std::uint8_t out[blockBytes], golden[blockBytes];
    const auto res = rank.readBlock(block, out);
    EXPECT_EQ(res.path, ReadPath::VlewFallback);
    EXPECT_EQ(res.outcome, RecoveryOutcome::MiscorrectionRisk);
    EXPECT_GT(res.vlewBitCorrections, 0u);
    EXPECT_TRUE(res.dataCorrect);
    rank.goldenBlock(block, golden);
    EXPECT_EQ(std::memcmp(out, golden, blockBytes), 0);
    EXPECT_EQ(rank.recoveryCounters().miscorrectionRisk.value(), 1u);
    EXPECT_EQ(rank.recoveryCounters().corrected.value(), 0u);
}

TEST(RecoveryOutcome, ThresholdSweepNeverAcceptsAboveThreshold)
{
    // Inject k = 1..4 single-bit byte errors (distinct chips) and
    // check the acceptance boundary exactly: k <= 2 is RS-accepted,
    // k > 2 falls back, and no accepted read ever reports more than
    // `threshold` corrections.
    for (unsigned k = 1; k <= 4; ++k) {
        PmRank rank = freshRank(100 + k);
        const unsigned block = 8 * k + 1;
        for (unsigned e = 0; e < k; ++e)
            rank.corruptByte(2 * e, block, e, 0x04);
        std::uint8_t out[blockBytes];
        const auto res = rank.readBlock(block, out);
        ASSERT_TRUE(res.dataCorrect) << "k=" << k;
        if (k <= 2) {
            EXPECT_EQ(res.path, ReadPath::RsAccepted) << "k=" << k;
            EXPECT_LE(res.rsCorrections, 2u);
        } else {
            EXPECT_EQ(res.path, ReadPath::VlewFallback) << "k=" << k;
            EXPECT_EQ(res.outcome,
                      RecoveryOutcome::MiscorrectionRisk);
        }
    }
}

TEST(RecoveryOutcome, PoisonedBlockReadsAsDetectedUE)
{
    PmRank rank = freshRank(31);
    RankSnapshot pristine = rank.snapshot();

    // Tear a write so that data landed on every chip but no code-bit
    // delta drained, with a delta too dense for BCH rollback, and a
    // sibling torn chip pattern recovery cannot resolve: the block
    // must come back poisoned, and reads must say so.
    std::uint8_t next[blockBytes];
    for (unsigned b = 0; b < blockBytes; ++b)
        next[b] = static_cast<std::uint8_t>(0xA5 ^ b);
    const unsigned block = 12;
    rank.applyTornWrite(block, next, 0x00Fu, 0);
    const auto report = rank.crashRecovery();
    if (rank.isPoisoned(block)) {
        std::uint8_t out[blockBytes];
        const auto res = rank.readBlock(block, out);
        EXPECT_EQ(res.path, ReadPath::Failed);
        EXPECT_EQ(res.outcome, RecoveryOutcome::DetectedUE);
        EXPECT_FALSE(report.ueBlocks.empty());

        // A completed rewrite re-validates the block.
        rank.writeBlock(block, next);
        const auto after = rank.readBlock(block, out);
        EXPECT_EQ(after.outcome, RecoveryOutcome::Corrected);
        EXPECT_EQ(std::memcmp(out, next, blockBytes), 0);
    }

    rank.restore(pristine);
    EXPECT_TRUE(rank.isPristine());
}

} // namespace
} // namespace nvck
