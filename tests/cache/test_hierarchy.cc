#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"

namespace nvck {
namespace {

/** Records write traffic leaving the hierarchy. */
struct RecordingSink : MemSink
{
    struct Write
    {
        Addr addr;
        bool isPm;
        bool omvHit;
    };
    std::vector<Write> writes;

    void
    writeBlock(Addr addr, bool is_pm, bool omv_hit) override
    {
        writes.push_back({addr, is_pm, omv_hit});
    }
};

struct Fixture
{
    RecordingSink sink;
    CacheConfig cfg;
    CacheHierarchy caches;

    explicit Fixture(bool omv_enabled = true)
        : cfg(makeCfg(omv_enabled)), caches(cfg, sink)
    {}

    static CacheConfig
    makeCfg(bool omv_enabled)
    {
        CacheConfig c;
        c.omvEnabled = omv_enabled;
        return c;
    }
};

TEST(Hierarchy, ColdMissThenHits)
{
    Fixture f;
    EXPECT_EQ(f.caches.access(0, 0x1000, false, true), HitLevel::Memory);
    EXPECT_EQ(f.caches.access(0, 0x1000, false, true), HitLevel::L1);
    // Another core misses its L1 but hits the shared LLC.
    EXPECT_EQ(f.caches.access(1, 0x1000, false, true), HitLevel::LLC);
}

TEST(Hierarchy, CleanWritesDirtyL1LineToMemory)
{
    Fixture f;
    f.caches.access(0, 0x2000, true, true); // dirty in L1
    EXPECT_TRUE(f.caches.clean(0, 0x2000, true));
    ASSERT_EQ(f.sink.writes.size(), 1u);
    EXPECT_EQ(f.sink.writes[0].addr, 0x2000u);
    EXPECT_TRUE(f.sink.writes[0].isPm);
    // The LLC copy was filled from memory and never modified: it holds
    // the old value, so the OMV is served from the LLC (SAM path).
    EXPECT_TRUE(f.sink.writes[0].omvHit);
    // Cleaning again is a nop (no dirty data anywhere).
    EXPECT_FALSE(f.caches.clean(0, 0x2000, true));
    EXPECT_EQ(f.caches.stats().cleanNops.value(), 1u);
}

TEST(Hierarchy, RepeatedWriteCleanCyclesHitOmv)
{
    // The common persistent-memory pattern: write, clwb, write, clwb...
    // After the first clean the LLC copy equals memory again (SAM set),
    // so every subsequent clean also finds its OMV.
    Fixture f;
    for (int round = 0; round < 5; ++round) {
        f.caches.access(0, 0x3000, true, true);
        ASSERT_TRUE(f.caches.clean(0, 0x3000, true));
    }
    EXPECT_EQ(f.sink.writes.size(), 5u);
    for (const auto &w : f.sink.writes)
        EXPECT_TRUE(w.omvHit);
    EXPECT_DOUBLE_EQ(f.caches.omvHitRate(), 1.0);
}

TEST(Hierarchy, OmvPreservedOnDirtyWritebackToLlc)
{
    // Fill a PM block, dirty it in L1, then force the L1 line out by
    // filling the same L1 set: the LLC must keep the old value as an
    // OMV and accept the dirty data in another way.
    Fixture f;
    const Addr target = 0x8000;
    f.caches.access(0, target, true, true);
    // L1: 64KB 2-way => 512 sets, block 64B: same set stride = 32KB.
    f.caches.access(0, target + 32 * 1024, false, false);
    f.caches.access(0, target + 64 * 1024, false, false);
    EXPECT_EQ(f.caches.stats().omvPreserved.value(), 1u);
    EXPECT_GT(f.caches.omvFraction(), 0.0);

    // Now cleaning via the LLC (no dirty L1 copy) must consume the OMV.
    EXPECT_TRUE(f.caches.clean(0, target, true));
    ASSERT_EQ(f.sink.writes.size(), 1u);
    EXPECT_TRUE(f.sink.writes[0].omvHit);
    EXPECT_DOUBLE_EQ(f.caches.omvFraction(), 0.0);
}

TEST(Hierarchy, OmvDisabledNeverReportsHits)
{
    Fixture f(false);
    f.caches.access(0, 0x2000, true, true);
    EXPECT_TRUE(f.caches.clean(0, 0x2000, true));
    ASSERT_EQ(f.sink.writes.size(), 1u);
    EXPECT_FALSE(f.sink.writes[0].omvHit);
    EXPECT_EQ(f.caches.stats().omvPreserved.value(), 0u);
}

TEST(Hierarchy, DramBlocksSkipOmvMachinery)
{
    Fixture f;
    f.caches.access(0, 0x2000, true, false);
    EXPECT_TRUE(f.caches.clean(0, 0x2000, false));
    ASSERT_EQ(f.sink.writes.size(), 1u);
    EXPECT_FALSE(f.sink.writes[0].isPm);
    EXPECT_EQ(f.caches.stats().omvHits.value() +
                  f.caches.stats().omvMisses.value(),
              0u);
}

TEST(Hierarchy, DirtyPmFractionTracksWrites)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(f.caches.dirtyPmFraction(), 0.0);
    for (Addr a = 0; a < 100; ++a)
        f.caches.access(0, a * blockBytes, true, true);
    EXPECT_GT(f.caches.dirtyPmFraction(), 0.0);
    // Cleaning them all brings the fraction back to zero.
    for (Addr a = 0; a < 100; ++a)
        f.caches.clean(0, a * blockBytes, true);
    EXPECT_DOUBLE_EQ(f.caches.dirtyPmFraction(), 0.0);
}

TEST(Hierarchy, EvictionOfDirtyLlcLineWritesBack)
{
    // Thrash one LLC set with PM writes until evictions occur.
    Fixture f;
    // LLC: 4MB 32-way => 2048 sets; same-set stride = 2048 * 64B = 128KB.
    const Addr stride = 128 * 1024;
    for (int i = 0; i < 40; ++i) {
        f.caches.access(0, static_cast<Addr>(i) * stride, true, true);
        // Push it out of L1 quickly via two same-L1-set fills (32KB).
        f.caches.access(0, static_cast<Addr>(i) * stride + 32 * 1024,
                        false, false);
        f.caches.access(0, static_cast<Addr>(i) * stride + 64 * 1024,
                        false, false);
    }
    EXPECT_GT(f.sink.writes.size(), 0u);
}

TEST(Hierarchy, NonInclusiveOmvMissPath)
{
    // Dirty a PM block in L1, then destroy the LLC copy by thrashing
    // the LLC set; the eventual clean finds no old value => OMV miss
    // (the paper's barnes effect).
    Fixture f;
    const Addr target = 0x10000;
    f.caches.access(0, target, true, true);
    const Addr stride = 128 * 1024; // LLC set stride
    for (int i = 1; i <= 40; ++i)
        f.caches.access(1, target + static_cast<Addr>(i) * stride, false,
                        false);
    EXPECT_TRUE(f.caches.clean(0, target, true));
    ASSERT_EQ(f.sink.writes.size(), 1u);
    EXPECT_FALSE(f.sink.writes[0].omvHit);
    EXPECT_LT(f.caches.omvHitRate(), 1.0);
}

TEST(Hierarchy, StatsCountHitsAndMisses)
{
    Fixture f;
    f.caches.access(0, 0x0, false, false);  // memory
    f.caches.access(0, 0x0, false, false);  // l1
    f.caches.access(1, 0x0, false, false);  // llc
    EXPECT_EQ(f.caches.stats().l1Hits.value(), 1u);
    EXPECT_EQ(f.caches.stats().l1Misses.value(), 2u);
    EXPECT_EQ(f.caches.stats().llcHits.value(), 1u);
    EXPECT_EQ(f.caches.stats().llcMisses.value(), 1u);
}

} // namespace
} // namespace nvck
