/**
 * @file
 * Power-cut semantics of the (volatile) cache hierarchy: every line —
 * dirty, clean, and the LLC's OMV copies — vanishes without generating
 * writebacks, and the tally reports what was lost.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"

namespace nvck {
namespace {

struct RecordingSink : MemSink
{
    std::size_t writes = 0;

    void
    writeBlock(Addr, bool, bool) override
    {
        ++writes;
    }
};

TEST(CrashCacheDiscard, DropsEverythingWithoutWritebacks)
{
    RecordingSink sink;
    CacheConfig cfg;
    CacheHierarchy caches(cfg, sink);

    // Dirty PM block (creates an OMV copy on the dirty writeback into
    // the LLC), a dirty DRAM block, and a clean PM block.
    caches.access(0, 0x1000, true, true);
    caches.clean(0, 0x1000, true); // push dirty copy down; OMV forms
    caches.access(0, 0x1000, true, true);
    caches.access(0, 0x2000, true, false);
    caches.access(1, 0x3000, false, true);
    const std::size_t writes_before = sink.writes;

    const VolatileDiscard report = caches.discardVolatile();
    EXPECT_GT(report.linesDropped, 0u);
    EXPECT_GE(report.dirtyPmLost, 1u);
    EXPECT_GE(report.dirtyDramLost, 1u);
    // The power cut itself must not emit write traffic.
    EXPECT_EQ(sink.writes, writes_before);

    // Everything misses afterwards: the hierarchy is cold.
    EXPECT_EQ(caches.access(0, 0x1000, false, true),
              HitLevel::Memory);
    EXPECT_EQ(caches.access(0, 0x2000, false, false),
              HitLevel::Memory);
    EXPECT_EQ(caches.dirtyPmFraction(), 0.0);
    EXPECT_EQ(caches.omvFraction(), 0.0);
}

TEST(CrashCacheDiscard, CountsOmvLinesSeparately)
{
    RecordingSink sink;
    CacheConfig cfg;
    CacheHierarchy caches(cfg, sink);

    // Write + clean + rewrite: the clean writeback leaves an OMV copy
    // in the LLC for the next XOR write to consume.
    caches.access(0, 0x1000, true, true);
    caches.clean(0, 0x1000, true);
    caches.access(0, 0x1000, true, true);
    if (caches.omvFraction() > 0.0) {
        const VolatileDiscard report = caches.discardVolatile();
        EXPECT_GE(report.omvLost, 1u);
    }
}

} // namespace
} // namespace nvck
