#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace nvck {
namespace {

TEST(SetAssocCache, Geometry)
{
    SetAssocCache l1(64 * 1024, 2);
    EXPECT_EQ(l1.sets(), 512u);
    EXPECT_EQ(l1.lines(), 1024u);
    SetAssocCache llc(4 * 1024 * 1024, 32);
    EXPECT_EQ(llc.sets(), 2048u);
    EXPECT_EQ(llc.lines(), 65536u);
}

TEST(SetAssocCache, FillThenLookup)
{
    SetAssocCache c(8 * 1024, 4);
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    CacheLine &v = c.victim(0x1000);
    c.fill(v, 0x1000, true, false);
    CacheLine *hit = c.lookup(0x1007); // same block
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->blockAddr, 0x1000u);
    EXPECT_TRUE(hit->isPm);
    EXPECT_EQ(c.lookup(0x1040), nullptr); // next block
}

TEST(SetAssocCache, LruEvictsOldest)
{
    SetAssocCache c(4 * blockBytes, 4); // one set, 4 ways
    for (Addr a = 0; a < 4; ++a) {
        CacheLine &v = c.victim(a * blockBytes);
        EXPECT_FALSE(v.valid);
        c.fill(v, a * blockBytes, false, false);
    }
    // Touch block 0 so block 1 becomes LRU.
    ASSERT_NE(c.lookup(0), nullptr);
    CacheLine &v = c.victim(0x5000);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.blockAddr, 1u * blockBytes);
}

TEST(SetAssocCache, OmvLinesInvisibleToLookup)
{
    SetAssocCache c(8 * 1024, 4);
    CacheLine &v = c.victim(0x2000);
    c.fill(v, 0x2000, true, false);
    v.omv = true;
    EXPECT_EQ(c.lookup(0x2000), nullptr);
    ASSERT_NE(c.lookupOmv(0x2000), nullptr);
}

TEST(SetAssocCache, OmvAndNormalLineCoexist)
{
    SetAssocCache c(8 * 1024, 4);
    CacheLine &omv = c.victim(0x2000);
    c.fill(omv, 0x2000, true, false);
    omv.omv = true;
    CacheLine &fresh = c.victim(0x2000);
    ASSERT_NE(&fresh, &omv);
    c.fill(fresh, 0x2000, true, true);
    EXPECT_EQ(c.lookup(0x2000), &fresh);
    EXPECT_EQ(c.lookupOmv(0x2000), &omv);
}

TEST(SetAssocCache, InvalidateClearsLine)
{
    SetAssocCache c(8 * 1024, 4);
    CacheLine &v = c.victim(0x40);
    c.fill(v, 0x40, false, true);
    c.invalidate(v);
    EXPECT_EQ(c.lookup(0x40), nullptr);
    EXPECT_FALSE(v.valid);
    EXPECT_FALSE(v.dirty);
}

} // namespace
} // namespace nvck
