#include <gtest/gtest.h>

#include <cstring>

#include "chipkill/pm_rank.hh"
#include "chipkill/schemes.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"

namespace nvck {
namespace {

/**
 * Cross-layer consistency: the analytical fallback fraction that the
 * timing simulator injects (SchemeTiming::vlewFetchProb) must match
 * what the bit-accurate rank actually measures when the same RBER is
 * injected — the two layers model the same machine.
 */
TEST(CrossLayer, AnalyticalFallbackMatchesBitAccurateRank)
{
    const double rber = rber::runtimePcm3Hourly;
    const double predicted = proposalScheme(rber).vlewFetchProb;

    PmRank rank(2048);
    Rng rng(31415);
    rank.initialize(rng);

    std::uint64_t reads = 0, fallbacks = 0;
    std::uint8_t out[blockBytes];
    for (int round = 0; round < 20; ++round) {
        rank.injectErrors(rng, rber);
        for (unsigned b = 0; b < rank.blocks(); ++b) {
            const auto res = rank.readBlock(b, out);
            ASSERT_NE(res.path, ReadPath::Failed);
            ASSERT_TRUE(res.dataCorrect);
            ++reads;
            if (res.path == ReadPath::VlewFallback)
                ++fallbacks;
        }
        rank.bootScrub(); // reset accumulation between rounds
    }
    const double measured =
        static_cast<double>(fallbacks) / static_cast<double>(reads);
    // predicted ~2.2e-4; 40960 reads -> ~9 events, sigma ~3. Allow a
    // wide but meaningful band (same order of magnitude).
    EXPECT_GT(measured, predicted / 4.0);
    EXPECT_LT(measured, predicted * 4.0);
}

/**
 * The RBER model, the storage model, and the codec must agree: the
 * VLEW strength chosen for the boot-target RBER actually corrects what
 * that RBER throws at the real codec.
 */
TEST(CrossLayer, BootTargetRberSurvivesRealVlew)
{
    const double rber = rberAfter(MemTech::Reram, secondsPerYear);
    ASSERT_NEAR(rber, rber::bootTarget, 1e-4);

    const BchCodec vlew(2048, 22);
    Rng rng(2718);
    BitVec data(2048);
    unsigned worst = 0;
    for (int trial = 0; trial < 300; ++trial) {
        data.randomize(rng);
        BitVec cw = vlew.encode(data);
        cw.injectErrors(rng, rber);
        const auto res = vlew.decode(cw);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
        ASSERT_EQ(vlew.extractData(cw), data);
        worst = std::max(worst, res.corrections);
    }
    // Mean errors ~2.3/word; the 22-bit budget has huge headroom.
    EXPECT_LE(worst, 22u);
}

/**
 * End-to-end story test: a full lifecycle — populate, run with errors,
 * wear out a block, disable it, lose a chip, scrub, reconfigure-ready —
 * with data intact at every step.
 */
TEST(CrossLayer, FullLifecycle)
{
    PmRank rank(256);
    Rng rng(161803);
    rank.initialize(rng);

    // Populate.
    Rng data_rng(141421);
    std::vector<std::array<std::uint8_t, blockBytes>> truth(64);
    for (unsigned i = 0; i < truth.size(); ++i) {
        for (auto &byte : truth[i])
            byte = static_cast<std::uint8_t>(data_rng.next() & 0xFF);
        rank.writeBlock(i, truth[i].data());
    }

    // Months of runtime with hourly-refresh errors and rewrites.
    std::uint8_t out[blockBytes];
    for (int epoch = 0; epoch < 5; ++epoch) {
        rank.injectErrors(rng, rber::runtimePcm3Hourly);
        for (unsigned i = 0; i < truth.size(); ++i) {
            const auto res = rank.readBlock(i, out);
            ASSERT_NE(res.path, ReadPath::Failed);
            ASSERT_EQ(std::memcmp(out, truth[i].data(), blockBytes), 0);
        }
        truth[epoch][5] = static_cast<std::uint8_t>(epoch);
        rank.writeBlock(static_cast<unsigned>(epoch),
                        truth[epoch].data());
    }

    // A block wears out: detect and disable it.
    rank.setStuckBit(2, 40 * chipBeatBytes, 1, true);
    std::uint8_t probe[blockBytes] = {};
    const unsigned bad = rank.writeVerify(40, probe);
    if (bad > 0)
        rank.disableBlock(40);

    // An outage with a dead chip.
    rank.failChip(7, rng);
    rank.injectErrors(rng, rber::bootTarget / 10.0);
    const auto report = rank.bootScrub();
    ASSERT_FALSE(report.uncorrectable);
    EXPECT_EQ(report.chipsRecovered, 1u);

    // Everything committed is still there.
    for (unsigned i = 0; i < truth.size(); ++i) {
        if (rank.isDisabled(i))
            continue;
        const auto res = rank.readBlock(i, out);
        ASSERT_EQ(res.path, ReadPath::Clean);
        ASSERT_EQ(std::memcmp(out, truth[i].data(), blockBytes), 0)
            << "block " << i;
    }
}

/**
 * The storage arithmetic quoted everywhere must tie out between the
 * params struct, the scheme catalogue, and the analytical model.
 */
TEST(CrossLayer, StorageNumbersAgree)
{
    const ProposalParams p;
    const auto scheme = proposalScheme(2e-4);
    EXPECT_DOUBLE_EQ(scheme.storageOverhead, p.totalStorageCost());
    EXPECT_NEAR(p.totalStorageCost(), 0.27, 0.005);

    // And the real constructed codes fit the paper's budgets.
    const BchCodec vlew(2048, 22);
    EXPECT_LE(vlew.r(), p.vlewCodeBytes * 8);
    const RsCodec rs(p.rsDataBytes, p.rsCheckBytes);
    EXPECT_EQ(rs.n() - rs.k(), p.rsCheckBytes);
}

} // namespace
} // namespace nvck
