/**
 * @file
 * Ties the timing and bit-level crash worlds together:
 *
 *  - differential: the timing campaign writes the media through the
 *    two-phase primitives (applyTornWrite data burst + drainCodeBits
 *    retirement) while PR 5's CrashInjector uses the one-shot
 *    applyTornWrite(data_mask, code_mask). Where the models overlap —
 *    the torn media state a cut leaves behind — both constructions
 *    must be bit-identical before recovery and reach identical
 *    recovery outcomes after it, for every torn shape and seed;
 *  - end-to-end: a small whole-system campaign through the real
 *    System::powerFail() path must uphold the persist-order oracle
 *    and stay deterministic across worker counts;
 *  - golden lock: the campaign table for a pinned tiny configuration
 *    is locked byte-for-byte against tests/golden/system_crash.txt
 *    (regenerate with NVCK_REGEN_GOLDEN=1 after intentional changes).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chipkill/pm_rank.hh"
#include "common/threadpool.hh"
#include "sim/syscrash.hh"

namespace nvck {
namespace {

constexpr unsigned kBlocks = 64;

std::uint16_t
fullMask(const PmRank &rank)
{
    return static_cast<std::uint16_t>((1u << rank.chips()) - 1);
}

/** Random chip subset (same fix-ups as the injectors). */
std::uint16_t
chipMask(Rng &rng, unsigned chips, bool forbid_empty, bool forbid_full)
{
    const std::uint16_t full =
        static_cast<std::uint16_t>((1u << chips) - 1);
    std::uint16_t mask = 0;
    for (unsigned c = 0; c < chips; ++c) {
        if (rng.chance(0.5))
            mask |= static_cast<std::uint16_t>(1u << c);
    }
    if (forbid_empty && mask == 0)
        mask = static_cast<std::uint16_t>(1u << rng.below(chips));
    if (forbid_full && mask == full)
        mask &= static_cast<std::uint16_t>(~(1u << rng.below(chips)));
    return mask;
}

void
randomValue(Rng &rng, std::uint8_t *out)
{
    for (unsigned i = 0; i < blockBytes; ++i)
        out[i] = static_cast<std::uint8_t>(rng.next());
}

/** Bit-identical persistent media (the state recovery starts from). */
void
expectSameMedia(const RankSnapshot &a, const RankSnapshot &b,
                const std::string &what)
{
    EXPECT_EQ(a.chipStore, b.chipStore) << what << ": chip data";
    EXPECT_EQ(a.codeStore, b.codeStore) << what << ": VLEW code bits";
    EXPECT_EQ(a.goldenStore, b.goldenStore) << what << ": golden data";
    EXPECT_EQ(a.goldenCode, b.goldenCode) << what << ": golden code";
    EXPECT_EQ(a.poisoned, b.poisoned) << what << ": poison flags";
}

/** Identical post-recovery outcomes, block by block. */
void
expectSameRecovery(PmRank &a, PmRank &b, const std::string &what)
{
    a.crashRecovery(2);
    b.crashRecovery(2);
    std::uint8_t out_a[blockBytes], out_b[blockBytes];
    for (unsigned blk = 0; blk < a.blocks(); ++blk) {
        const auto ra = a.readBlock(blk, out_a, 2);
        const auto rb = b.readBlock(blk, out_b, 2);
        EXPECT_EQ(ra.path, rb.path) << what << " block " << blk;
        EXPECT_EQ(a.isPoisoned(blk), b.isPoisoned(blk))
            << what << " block " << blk;
        EXPECT_EQ(0, std::memcmp(out_a, out_b, blockBytes))
            << what << " block " << blk << ": readback diverged";
    }
}

/**
 * The three torn shapes a power cut can leave, expressed both ways.
 * data_torn: mid-burst cut (strict data subset, nothing drained).
 * drain_torn: mid-drain cut (full data, strict code subset).
 * Neither: the EUR coalesce window (full data, nothing drained).
 */
struct TornShape
{
    const char *name;
    bool dataTorn;
    bool drainTorn;
};

const TornShape kShapes[] = {
    {"mid-burst", true, false},
    {"eur-window", false, false},
    {"torn-drain", false, true},
};

class TwoPhaseDifferential
    : public ::testing::TestWithParam<TornShape>
{
};

TEST_P(TwoPhaseDifferential, MatchesOneShotTornWrite)
{
    const TornShape shape = GetParam();
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng init(900 + seed);
        PmRank one_shot(kBlocks);
        one_shot.initialize(init);
        Rng init_b(900 + seed); // same stream -> same pristine rank
        PmRank two_phase(kBlocks);
        two_phase.initialize(init_b);

        Rng rng(7000 + seed);
        const unsigned block =
            static_cast<unsigned>(rng.below(kBlocks));
        std::uint8_t old_data[blockBytes];
        one_shot.goldenBlock(block, old_data);
        std::uint8_t new_data[blockBytes];
        randomValue(rng, new_data);

        std::uint16_t data_mask = fullMask(one_shot);
        std::uint16_t code_mask = 0;
        if (shape.dataTorn)
            data_mask = chipMask(rng, one_shot.chips(), true, true);
        if (shape.drainTorn)
            code_mask = chipMask(rng, one_shot.chips(), true, true);

        // PR 5's bit-level construction: one torn write.
        one_shot.applyTornWrite(block, new_data, data_mask, code_mask);

        // The timing mirror's construction: data burst at issue time,
        // then (for the drained chips) the EUR register retiring.
        two_phase.applyTornWrite(block, new_data, data_mask, 0);
        if (code_mask)
            two_phase.drainCodeBits(block, old_data, code_mask);

        expectSameMedia(one_shot.snapshot(), two_phase.snapshot(),
                        std::string(shape.name) + " seed " +
                            std::to_string(seed));
        expectSameRecovery(one_shot, two_phase,
                           std::string(shape.name) + " seed " +
                               std::to_string(seed));
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TwoPhaseDifferential,
                         ::testing::ValuesIn(kShapes),
                         [](const auto &info) {
                             return std::string(info.param.name) ==
                                            "mid-burst"
                                        ? "MidBurst"
                                        : (std::string(
                                               info.param.name) ==
                                                   "eur-window"
                                               ? "EurWindow"
                                               : "TornDrain");
                         });

TEST(TwoPhaseDifferential, CoalescedChainMatchesOneShotOfFinalIntent)
{
    // Several bursts coalescing in one EUR register before a torn
    // drain must leave the same media as a single torn write of the
    // final intent: the register holds one coalesced delta, not a
    // history (the linearity the paper's Section V-D leans on).
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng init(1400 + seed);
        PmRank one_shot(kBlocks);
        one_shot.initialize(init);
        Rng init_b(1400 + seed);
        PmRank two_phase(kBlocks);
        two_phase.initialize(init_b);

        Rng rng(5200 + seed);
        const unsigned block =
            static_cast<unsigned>(rng.below(kBlocks));
        std::uint8_t old_data[blockBytes];
        one_shot.goldenBlock(block, old_data);
        std::uint8_t v1[blockBytes], v2[blockBytes], v3[blockBytes];
        randomValue(rng, v1);
        randomValue(rng, v2);
        randomValue(rng, v3);
        const std::uint16_t code_mask =
            chipMask(rng, one_shot.chips(), true, true);

        one_shot.applyTornWrite(block, v3, fullMask(one_shot),
                                code_mask);

        two_phase.applyTornWrite(block, v1, fullMask(two_phase), 0);
        two_phase.applyTornWrite(block, v2, fullMask(two_phase), 0);
        two_phase.applyTornWrite(block, v3, fullMask(two_phase), 0);
        two_phase.drainCodeBits(block, old_data, code_mask);

        expectSameMedia(one_shot.snapshot(), two_phase.snapshot(),
                        "chain seed " + std::to_string(seed));
        expectSameRecovery(one_shot, two_phase,
                           "chain seed " + std::to_string(seed));
    }
}

SysCrashCampaignConfig
tinyCampaign()
{
    SysCrashCampaignConfig cfg;
    cfg.seed = 505;
    cfg.trials = 16; // 2 per (tech x site) cell
    cfg.chunkTrials = 2;
    return cfg;
}

TEST(SystemCrashCampaign, OracleHoldsOnSmallCampaign)
{
    std::ostringstream os;
    SweepOptions opts;
    ThreadPool pool(2);
    opts.pool = &pool;
    const SysCrashTotals totals =
        systemCrashCampaign(os, opts, tinyCampaign());

    EXPECT_EQ(totals.violations(), 0u);
    const SysCrashTally sum = totals.total();
    EXPECT_EQ(sum.trials, 16u);
    // Something actually happened on the timing path.
    EXPECT_GT(sum.bursts, 0u);
    EXPECT_GT(sum.pendingAtCut, 0u);
    // With zero violations the torn verdicts partition the pending
    // population exactly: old / intermediate / new / reported UE.
    EXPECT_EQ(sum.tornOld + sum.tornNew + sum.tornIntermediate +
                  sum.tornUe,
              sum.pendingAtCut);
    EXPECT_NE(os.str().find("cut site"), std::string::npos);
}

TEST(SystemCrashCampaign, SeededTrialIsReplayable)
{
    // The --seed contract: the same substream reproduces the same
    // tally, the shape a CI failure replay relies on.
    SysCrashTrialConfig tc;
    tc.tech = PmTech::Reram;
    tc.site = CutSite::AtPmWrite;
    SysCrashTally a, b;
    {
        Rng rng(Rng(424242).substream(3));
        a = runSysCrashTrial(tc, rng);
    }
    {
        Rng rng(Rng(424242).substream(3));
        b = runSysCrashTrial(tc, rng);
    }
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.cutsAtSite, b.cutsAtSite);
    EXPECT_EQ(a.bursts, b.bursts);
    EXPECT_EQ(a.drains, b.drains);
    EXPECT_EQ(a.flushedAtCut, b.flushedAtCut);
    EXPECT_EQ(a.pendingAtCut, b.pendingAtCut);
    EXPECT_EQ(a.tornOld, b.tornOld);
    EXPECT_EQ(a.tornNew, b.tornNew);
    EXPECT_EQ(a.tornUe, b.tornUe);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.violations, 0u);
}

/** See test_bench_golden.cc for the regen workflow. */
std::string
runGoldenCampaign(unsigned workers)
{
    ThreadPool pool(workers);
    SweepOptions opts;
    opts.pool = &pool;
    std::ostringstream os;
    systemCrashCampaign(os, opts, tinyCampaign());
    return os.str();
}

TEST(SystemCrashCampaign, TableMatchesGoldenForOneAndEightWorkers)
{
    const std::string serial = runGoldenCampaign(1);
    const std::string wide = runGoldenCampaign(8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, wide)
        << "8-worker output diverged from the serial run";

    const std::string path =
        std::string(NVCK_GOLDEN_DIR) + "/system_crash.txt";
    if (std::getenv("NVCK_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << serial;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run with NVCK_REGEN_GOLDEN=1 to create it";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), serial)
        << "campaign output changed vs " << path;
}

} // namespace
} // namespace nvck
