#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"

namespace nvck {
namespace {

/** Scripted workload feeding a fixed op list, then idles. */
class ScriptedWorkload : public Workload
{
  public:
    explicit ScriptedWorkload(std::deque<TraceOp> ops, unsigned window)
        : script(std::move(ops)), loadWindow(window)
    {}

    std::string name() const override { return "scripted"; }
    unsigned mlp() const override { return loadWindow; }

    TraceOp
    next(unsigned) override
    {
        if (script.empty()) {
            TraceOp idle;
            idle.kind = TraceOp::Kind::Idle;
            idle.idleNs = 1000.0;
            return idle;
        }
        TraceOp op = script.front();
        script.pop_front();
        return op;
    }

  private:
    std::deque<TraceOp> script;
    unsigned loadWindow;
};

/** Context with programmable latency and a controllable memory. */
class FakeContext : public CoreContext
{
  public:
    EventQueue *eq = nullptr;
    Tick memLatency = nsToTicks(100);
    Cycle localLatency = 1;
    bool persistBusy = false;
    unsigned memReads = 0;
    unsigned cleans = 0;
    Core *drainWaiter = nullptr;

    bool
    access(unsigned, Addr, bool is_write, bool, Tick when,
           Cycle *latency_cycles, Core &requester) override
    {
        if (is_write) {
            *latency_cycles = localLatency;
            return true;
        }
        ++memReads;
        Core *rp = &requester;
        const Tick done = std::max(when, eq->now()) + memLatency;
        eq->schedule(done, [rp, done] { rp->memComplete(done); });
        return false;
    }

    void clean(unsigned, Addr, bool, Tick) override { ++cleans; }

    bool persistsPending(unsigned) const override { return persistBusy; }

    void
    onPersistDrain(unsigned, Core &requester) override
    {
        drainWaiter = &requester;
    }
};

TraceOp
loadOp(Addr addr, unsigned gap = 0)
{
    TraceOp op;
    op.kind = TraceOp::Kind::Load;
    op.addr = addr;
    op.gap = gap;
    return op;
}

TEST(Core, RetiresInstructionsAndCountsOps)
{
    EventQueue eq;
    FakeContext ctx;
    ctx.eq = &eq;
    std::deque<TraceOp> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back(loadOp(static_cast<Addr>(i) * 64, 39));
    ScriptedWorkload wl(std::move(ops), 8);
    Core core(0, eq, ctx, wl, CoreConfig{});
    core.start();
    eq.runUntil(nsToTicks(5000));
    EXPECT_EQ(core.memOps(), 10u);
    EXPECT_EQ(ctx.memReads, 10u);
    // 10 ops x (39 gap + 1).
    EXPECT_GE(core.instructions(), 400u);
}

TEST(Core, DependentLoadsSerialize)
{
    // mlp = 1: total time ~= N * memLatency.
    EventQueue eq;
    FakeContext ctx;
    ctx.eq = &eq;
    ctx.memLatency = nsToTicks(200);
    std::deque<TraceOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(loadOp(static_cast<Addr>(i) * 64));
    ScriptedWorkload wl(std::move(ops), 1);
    Core serial(0, eq, ctx, wl, CoreConfig{});
    serial.start();
    eq.runUntil(nsToTicks(10000));
    EXPECT_EQ(serial.memOps(), 8u);

    // mlp = 8: loads overlap, so the same 8 loads finish much sooner;
    // compare instruction progress at a fixed early time.
    EventQueue eq2;
    FakeContext ctx2;
    ctx2.eq = &eq2;
    ctx2.memLatency = nsToTicks(200);
    std::deque<TraceOp> ops2;
    for (int i = 0; i < 8; ++i)
        ops2.push_back(loadOp(static_cast<Addr>(i) * 64));
    ScriptedWorkload wl2(std::move(ops2), 8);
    Core parallel(0, eq2, ctx2, wl2, CoreConfig{});
    parallel.start();
    eq2.runUntil(nsToTicks(250));
    eq.runUntil(0); // no-op, keep compilers happy about unused
    EXPECT_EQ(parallel.memOps(), 8u); // all issued within one latency

    // The serial core cannot have issued more than 2 loads by 250ns.
    EventQueue eq3;
    FakeContext ctx3;
    ctx3.eq = &eq3;
    ctx3.memLatency = nsToTicks(200);
    std::deque<TraceOp> ops3;
    for (int i = 0; i < 8; ++i)
        ops3.push_back(loadOp(static_cast<Addr>(i) * 64));
    ScriptedWorkload wl3(std::move(ops3), 1);
    Core serial2(0, eq3, ctx3, wl3, CoreConfig{});
    serial2.start();
    eq3.runUntil(nsToTicks(250));
    EXPECT_LE(serial2.memOps(), 2u);
}

TEST(Core, FenceWaitsForPersistDrain)
{
    EventQueue eq;
    FakeContext ctx;
    ctx.eq = &eq;
    ctx.persistBusy = true;
    std::deque<TraceOp> ops;
    TraceOp fence;
    fence.kind = TraceOp::Kind::Fence;
    ops.push_back(fence);
    ops.push_back(loadOp(0x40));
    ScriptedWorkload wl(std::move(ops), 8);
    Core core(0, eq, ctx, wl, CoreConfig{});
    core.start();
    eq.runUntil(nsToTicks(1000));
    // Stalled at the fence: the load has not issued.
    EXPECT_EQ(ctx.memReads, 0u);
    ASSERT_NE(ctx.drainWaiter, nullptr);

    // Drain at 2us: the core resumes and issues the load.
    ctx.persistBusy = false;
    eq.schedule(nsToTicks(2000), [&ctx] {
        ctx.drainWaiter->fenceResume(nsToTicks(2000));
    });
    eq.runUntil(nsToTicks(3000));
    EXPECT_EQ(ctx.memReads, 1u);
}

TEST(Core, CleanOpsReachContext)
{
    EventQueue eq;
    FakeContext ctx;
    ctx.eq = &eq;
    std::deque<TraceOp> ops;
    TraceOp cl;
    cl.kind = TraceOp::Kind::Clean;
    cl.addr = 0x80;
    cl.isPm = true;
    ops.push_back(cl);
    ScriptedWorkload wl(std::move(ops), 8);
    Core core(0, eq, ctx, wl, CoreConfig{});
    core.start();
    eq.runUntil(nsToTicks(1000));
    EXPECT_EQ(ctx.cleans, 1u);
}

TEST(Core, IdleAdvancesTimeWithoutMemOps)
{
    EventQueue eq;
    FakeContext ctx;
    ctx.eq = &eq;
    ScriptedWorkload wl({}, 8); // pure idle stream
    Core core(0, eq, ctx, wl, CoreConfig{});
    core.start();
    eq.runUntil(nsToTicks(10000));
    EXPECT_EQ(core.memOps(), 0u);
    EXPECT_GT(core.instructions(), 0u); // idle ops still retire
}

} // namespace
} // namespace nvck
