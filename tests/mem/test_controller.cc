#include <gtest/gtest.h>

#include <vector>

#include "common/event.hh"
#include "mem/controller.hh"

namespace nvck {
namespace {

MemControllerConfig
hybridConfig()
{
    MemControllerConfig cfg;
    cfg.dram = ddr4_2400();
    cfg.pm = reramTiming();
    return cfg;
}

struct Fixture
{
    EventQueue eq;
    MemController ctrl;

    explicit Fixture(const MemControllerConfig &cfg = hybridConfig())
        : ctrl(eq, cfg)
    {}

    /** Enqueue and return completion tick once run. */
    Tick
    access(Addr addr, MemOp op, bool is_pm)
    {
        Tick done = 0;
        MemRequest req;
        req.addr = addr;
        req.op = op;
        req.isPm = is_pm;
        req.onComplete = [&done](Tick t) { done = t; };
        EXPECT_TRUE(ctrl.enqueue(req));
        eq.run();
        return done;
    }
};

TEST(MemController, SingleDramReadLatency)
{
    Fixture f;
    const Tick done = f.access(0x1000, MemOp::Read, false);
    // Closed bank: tRCD + tCAS + burst = 13.32 + 13.32 + 3.33 ns.
    EXPECT_NEAR(ticksToNs(done), 29.97, 0.5);
}

TEST(MemController, SinglePmReadUsesNvramLatency)
{
    Fixture f;
    const Tick done = f.access(0x1000, MemOp::Read, true);
    // ReRAM tRCD 120ns + tCAS + burst.
    EXPECT_NEAR(ticksToNs(done), 120.0 + 13.32 + 3.33, 0.5);
}

TEST(MemController, RowHitIsFasterThanRowMiss)
{
    Fixture f;
    const Tick first = f.access(0x0, MemOp::Read, false);
    const Tick start_second = f.eq.now();
    const Tick second = f.access(64, MemOp::Read, false); // same row
    EXPECT_LT(second - start_second, first);
    EXPECT_EQ(f.ctrl.stats().rowHits.value(), 1u);
}

TEST(MemController, RowClosesAfterIdleWindow)
{
    Fixture f;
    f.access(0x0, MemOp::Read, false);
    // Wait well past the 50ns idle close, then access the same row:
    // must be a row miss (closed), not a hit.
    f.eq.runUntil(f.eq.now() + nsToTicks(500));
    f.access(64, MemOp::Read, false);
    EXPECT_EQ(f.ctrl.stats().rowHits.value(), 0u);
    EXPECT_EQ(f.ctrl.stats().rowMisses.value(), 2u);
}

TEST(MemController, ConflictPaysPrechargePlusActivate)
{
    Fixture f;
    f.access(0x0, MemOp::Read, false);
    // Same bank, different row, immediately: conflict.
    const unsigned bpr = f.ctrl.blocksPerRow(false);
    const unsigned banks = 16;
    const Addr other_row =
        static_cast<Addr>(bpr) * banks * blockBytes; // row + 1, bank 0
    const Tick start = f.eq.now();
    const Tick done = f.access(other_row, MemOp::Read, false);
    EXPECT_EQ(f.ctrl.stats().rowConflicts.value(), 1u);
    // tRP + tRCD + tCAS + burst.
    EXPECT_NEAR(ticksToNs(done - start), 13.32 * 3 + 3.33, 1.0);
}

TEST(MemController, PmWriteScaleInflatesWriteLatency)
{
    auto cfg = hybridConfig();
    Fixture base(cfg);
    const Tick base_done = base.access(0x40, MemOp::Write, true);

    cfg.pmWriteScale = 2.0;
    cfg.pmWriteExtra = nsToTicks(20);
    Fixture scaled(cfg);
    const Tick scaled_done = scaled.access(0x40, MemOp::Write, true);

    // Extra = tWR (300ns) + 20ns.
    EXPECT_NEAR(ticksToNs(scaled_done - base_done), 320.0, 1.0);
}

TEST(MemController, DramWritesUnaffectedByPmScale)
{
    // A lone write is held until the age bound, then serviced with
    // DDR4 timing: the PM write scale must not affect the DRAM rank.
    auto cfg = hybridConfig();
    cfg.pmWriteScale = 4.0;
    cfg.writeMaxAge = nsToTicks(100);
    Fixture f(cfg);
    const Tick done = f.access(0x40, MemOp::Write, false);
    // Age bound + tRCD + tCWD + burst + tWR.
    EXPECT_NEAR(ticksToNs(done), 100.0 + 13.32 + 10.0 + 3.33 + 15.0,
                2.0);
}

TEST(MemController, QueueCapacityEnforced)
{
    auto cfg = hybridConfig();
    cfg.readQueueCap = 4;
    EventQueue eq;
    MemController ctrl(eq, cfg);
    MemRequest req;
    req.op = MemOp::Read;
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        req.addr = static_cast<Addr>(i) * 64;
        if (ctrl.enqueue(req))
            ++accepted;
    }
    // The scheduler may have issued some as they were enqueued at tick
    // 0 (no run() yet), but acceptance can never exceed cap + issued.
    EXPECT_LE(accepted, 10);
    EXPECT_GE(accepted, 4);
    eq.run();
    EXPECT_TRUE(ctrl.idle());
}

TEST(MemController, BankParallelismOverlapsAccesses)
{
    // Two reads to different banks should overlap; two to the same
    // bank+row-conflict serialize.
    Fixture f;
    std::vector<Tick> done(2, 0);
    const unsigned bpr = f.ctrl.blocksPerRow(false);
    for (int i = 0; i < 2; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(bpr) * blockBytes *
                   static_cast<Addr>(i + 1); // banks 1 and 2
        req.op = MemOp::Read;
        req.onComplete = [&done, i](Tick t) { done[i] = t; };
        ASSERT_TRUE(f.ctrl.enqueue(req));
    }
    f.eq.run();
    const Tick parallel_span = std::max(done[0], done[1]);

    Fixture g;
    std::vector<Tick> done2(2, 0);
    const unsigned banks = 16;
    for (int i = 0; i < 2; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(bpr) * blockBytes * banks *
                   static_cast<Addr>(i + 1); // bank 0, rows 1 and 2
        req.op = MemOp::Read;
        req.onComplete = [&done2, i](Tick t) { done2[i] = t; };
        ASSERT_TRUE(g.ctrl.enqueue(req));
    }
    g.eq.run();
    const Tick serial_span = std::max(done2[0], done2[1]);
    EXPECT_LT(parallel_span, serial_span);
}

TEST(MemController, FrFcfsPrefersRowHit)
{
    // Open a row in bank0; enqueue (a) a conflict to bank0-row1 and
    // then (b) a hit to bank0-row0 while the bank is busy. The hit
    // must complete first despite arriving later.
    Fixture f;
    const unsigned bpr = f.ctrl.blocksPerRow(false);
    const unsigned banks = 16;
    f.access(0, MemOp::Read, false); // opens row 0 of bank 0

    Tick conflict_done = 0, hit_done = 0;
    MemRequest conflict;
    conflict.addr =
        static_cast<Addr>(bpr) * blockBytes * banks; // row 1 bank 0
    conflict.op = MemOp::Read;
    conflict.onComplete = [&](Tick t) { conflict_done = t; };
    MemRequest hit;
    hit.addr = 2 * blockBytes; // row 0 bank 0
    hit.op = MemOp::Read;
    hit.onComplete = [&](Tick t) { hit_done = t; };
    ASSERT_TRUE(f.ctrl.enqueue(conflict));
    ASSERT_TRUE(f.ctrl.enqueue(hit));
    f.eq.run();
    EXPECT_LT(hit_done, conflict_done);
}

TEST(MemController, EurCountsCoalescedCodeWrites)
{
    auto cfg = hybridConfig();
    cfg.eurEnabled = true;
    Fixture f(cfg);
    // Three writes into the same VLEW (32-block span) of one row: one
    // coalesced code write when the row closes.
    for (Addr a : {Addr{0}, Addr{64}, Addr{128}}) {
        MemRequest req;
        req.addr = a;
        req.op = MemOp::Write;
        req.isPm = true;
        ASSERT_TRUE(f.ctrl.enqueue(req));
    }
    f.eq.run();
    // Force the row to close by idling past the window and touching a
    // different row of the same bank.
    f.eq.runUntil(f.eq.now() + nsToTicks(1000));
    const unsigned bpr = f.ctrl.blocksPerRow(true);
    MemRequest probe;
    probe.addr = static_cast<Addr>(bpr) * blockBytes * 16;
    probe.op = MemOp::Write;
    probe.isPm = true;
    ASSERT_TRUE(f.ctrl.enqueue(probe));
    f.eq.run();
    EXPECT_NEAR(f.ctrl.cFactor(), 1.0 / 3.0, 0.1);
}

TEST(MemController, EurDistinctVlewsDrainSeparately)
{
    auto cfg = hybridConfig();
    cfg.eurEnabled = true;
    Fixture f(cfg);
    // Writes to two different VLEW slots of the same bank 0 row: with
    // VLEW-granular interleaving over 16 banks, chunk 0 (addr 0) and
    // chunk 16 (addr 16 * 2KB) share bank 0, slots 0 and 1.
    for (Addr a : {Addr{0}, Addr{16 * 32 * 64}}) {
        MemRequest req;
        req.addr = a;
        req.op = MemOp::Write;
        req.isPm = true;
        ASSERT_TRUE(f.ctrl.enqueue(req));
    }
    f.eq.run();
    f.eq.runUntil(f.eq.now() + nsToTicks(1000));
    MemRequest probe;
    probe.addr = 64; // same row: hit, no drain
    probe.op = MemOp::Read;
    probe.isPm = true;
    Tick done = 0;
    probe.onComplete = [&](Tick t) { done = t; };
    ASSERT_TRUE(f.ctrl.enqueue(probe));
    f.eq.run();
    // The idle close drained both registers: 2 code writes / 2 data.
    EXPECT_NEAR(f.ctrl.cFactor(), 1.0, 0.01);
}

TEST(MemController, OverheadTrafficTrackedSeparately)
{
    Fixture f;
    MemRequest req;
    req.addr = 0x100;
    req.op = MemOp::Read;
    req.isPm = true;
    req.isOverhead = true;
    ASSERT_TRUE(f.ctrl.enqueue(req));
    f.eq.run();
    EXPECT_EQ(f.ctrl.stats().overheadReads.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().pmReads.value(), 0u);
}

TEST(MemController, WriteDrainEventuallyServicesWrites)
{
    Fixture f;
    int completed = 0;
    for (int i = 0; i < 40; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.op = MemOp::Write;
        req.isPm = true;
        req.onComplete = [&completed](Tick) { ++completed; };
        ASSERT_TRUE(f.ctrl.enqueue(req));
    }
    f.eq.run();
    EXPECT_EQ(completed, 40);
    EXPECT_TRUE(f.ctrl.idle());
}

} // namespace
} // namespace nvck
