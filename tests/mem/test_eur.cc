#include <gtest/gtest.h>

#include "mem/eur.hh"

namespace nvck {
namespace {

TEST(Eur, CoalescesWritesToSameVlew)
{
    EurModel eur(16, 4);
    eur.recordWrite(0, 2);
    eur.recordWrite(0, 2);
    eur.recordWrite(0, 2);
    EXPECT_EQ(eur.pendingRegisters(0), 1u);
    EXPECT_EQ(eur.drain(0), 1u);
    EXPECT_EQ(eur.dataWrites(), 3u);
    EXPECT_EQ(eur.codeWrites(), 1u);
    EXPECT_NEAR(eur.cFactor(), 1.0 / 3.0, 1e-12);
}

TEST(Eur, SeparateVlewsSeparateRegisters)
{
    EurModel eur(16, 4);
    eur.recordWrite(3, 0);
    eur.recordWrite(3, 1);
    eur.recordWrite(3, 3);
    EXPECT_EQ(eur.pendingRegisters(3), 3u);
    EXPECT_EQ(eur.drain(3), 3u);
    EXPECT_EQ(eur.pendingRegisters(3), 0u);
}

TEST(Eur, BanksAreIndependent)
{
    EurModel eur(4, 4);
    eur.recordWrite(0, 0);
    eur.recordWrite(1, 0);
    EXPECT_EQ(eur.drain(0), 1u);
    EXPECT_EQ(eur.pendingRegisters(1), 1u);
}

TEST(Eur, DrainOfCleanBankIsZero)
{
    EurModel eur(4, 4);
    EXPECT_EQ(eur.drain(2), 0u);
    EXPECT_EQ(eur.codeWrites(), 0u);
}

TEST(Eur, PaperRegisterBudget)
{
    // B * R / 256 registers total: R = 1KB per chip row -> 4 per bank.
    EurModel eur(16, 1024 / 256);
    EXPECT_EQ(eur.registersPerBank(), 4u);
}

TEST(Eur, WorstCaseCFactorIsOne)
{
    // Every write to a distinct VLEW (no row locality): C = 1.
    EurModel eur(1, 4);
    for (unsigned i = 0; i < 4; ++i)
        eur.recordWrite(0, i);
    eur.drain(0);
    EXPECT_DOUBLE_EQ(eur.cFactor(), 1.0);
}

TEST(Eur, DrainSlotsWithNothingPendingNeverObserves)
{
    EurModel eur(4, 4);
    unsigned observed = 0;
    EXPECT_EQ(eur.drainSlots(1, [&](unsigned) { ++observed; }), 0u);
    EXPECT_EQ(observed, 0u);
    EXPECT_EQ(eur.pendingMask(1), 0u);
    EXPECT_EQ(eur.codeWrites(), 0u);
}

TEST(Eur, PowerCutDuringFinalDrainSlot)
{
    // drainSlots() iterates a local copy of the dirty mask, so a power
    // cut fired from the last slot's observation (the crash campaign's
    // mid-drain cut) still lets the in-flight drain run to completion;
    // the registerfile just has nothing left to lose afterwards.
    EurModel eur(2, 4);
    eur.recordWrite(0, 0);
    eur.recordWrite(0, 2);
    eur.recordWrite(0, 3);
    std::vector<unsigned> observed;
    const unsigned drained = eur.drainSlots(0, [&](unsigned slot) {
        observed.push_back(slot);
        if (observed.size() == 3)
            EXPECT_EQ(eur.powerCut(), 1u); // only this slot still dirty
    });
    EXPECT_EQ(drained, 3u);
    EXPECT_EQ(observed, (std::vector<unsigned>{0, 2, 3}));
    EXPECT_EQ(eur.pendingMask(0), 0u);
    EXPECT_EQ(eur.pendingRegisters(0), 0u);
}

TEST(Eur, ObservationSeesSlotStillDirty)
{
    // on_slot fires before the register clears: a cut landing inside
    // the observation must still count the retiring slot as pending.
    EurModel eur(1, 4);
    eur.recordWrite(0, 1);
    eur.drainSlots(0, [&](unsigned slot) {
        EXPECT_EQ(slot, 1u);
        EXPECT_EQ(eur.pendingMask(0), 1ull << 1);
    });
    EXPECT_EQ(eur.pendingMask(0), 0u);
}

TEST(Eur, DoublePowerCutIsIdempotent)
{
    EurModel eur(2, 4);
    eur.recordWrite(0, 0);
    eur.recordWrite(1, 3);
    EXPECT_EQ(eur.powerCut(), 2u);
    EXPECT_EQ(eur.powerCut(), 0u);
    EXPECT_EQ(eur.pendingMask(0), 0u);
    EXPECT_EQ(eur.pendingMask(1), 0u);
    // Stats survive the cut (they describe history, not state).
    EXPECT_EQ(eur.dataWrites(), 2u);
}

TEST(Eur, ResetStats)
{
    EurModel eur(1, 4);
    eur.recordWrite(0, 0);
    eur.drain(0);
    eur.resetStats();
    EXPECT_EQ(eur.codeWrites(), 0u);
    EXPECT_EQ(eur.dataWrites(), 0u);
}

} // namespace
} // namespace nvck
