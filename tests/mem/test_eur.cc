#include <gtest/gtest.h>

#include "mem/eur.hh"

namespace nvck {
namespace {

TEST(Eur, CoalescesWritesToSameVlew)
{
    EurModel eur(16, 4);
    eur.recordWrite(0, 2);
    eur.recordWrite(0, 2);
    eur.recordWrite(0, 2);
    EXPECT_EQ(eur.pendingRegisters(0), 1u);
    EXPECT_EQ(eur.drain(0), 1u);
    EXPECT_EQ(eur.dataWrites(), 3u);
    EXPECT_EQ(eur.codeWrites(), 1u);
    EXPECT_NEAR(eur.cFactor(), 1.0 / 3.0, 1e-12);
}

TEST(Eur, SeparateVlewsSeparateRegisters)
{
    EurModel eur(16, 4);
    eur.recordWrite(3, 0);
    eur.recordWrite(3, 1);
    eur.recordWrite(3, 3);
    EXPECT_EQ(eur.pendingRegisters(3), 3u);
    EXPECT_EQ(eur.drain(3), 3u);
    EXPECT_EQ(eur.pendingRegisters(3), 0u);
}

TEST(Eur, BanksAreIndependent)
{
    EurModel eur(4, 4);
    eur.recordWrite(0, 0);
    eur.recordWrite(1, 0);
    EXPECT_EQ(eur.drain(0), 1u);
    EXPECT_EQ(eur.pendingRegisters(1), 1u);
}

TEST(Eur, DrainOfCleanBankIsZero)
{
    EurModel eur(4, 4);
    EXPECT_EQ(eur.drain(2), 0u);
    EXPECT_EQ(eur.codeWrites(), 0u);
}

TEST(Eur, PaperRegisterBudget)
{
    // B * R / 256 registers total: R = 1KB per chip row -> 4 per bank.
    EurModel eur(16, 1024 / 256);
    EXPECT_EQ(eur.registersPerBank(), 4u);
}

TEST(Eur, WorstCaseCFactorIsOne)
{
    // Every write to a distinct VLEW (no row locality): C = 1.
    EurModel eur(1, 4);
    for (unsigned i = 0; i < 4; ++i)
        eur.recordWrite(0, i);
    eur.drain(0);
    EXPECT_DOUBLE_EQ(eur.cFactor(), 1.0);
}

TEST(Eur, ResetStats)
{
    EurModel eur(1, 4);
    eur.recordWrite(0, 0);
    eur.drain(0);
    eur.resetStats();
    EXPECT_EQ(eur.codeWrites(), 0u);
    EXPECT_EQ(eur.dataWrites(), 0u);
}

} // namespace
} // namespace nvck
