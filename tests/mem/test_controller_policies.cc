#include <gtest/gtest.h>

#include <vector>

#include "common/event.hh"
#include "mem/controller.hh"

namespace nvck {
namespace {

MemControllerConfig
baseConfig()
{
    MemControllerConfig cfg;
    cfg.dram = ddr4_2400();
    cfg.pm = pcmTiming();
    return cfg;
}

struct Harness
{
    EventQueue eq;
    MemController ctrl;

    explicit Harness(const MemControllerConfig &cfg) : ctrl(eq, cfg) {}

    void
    read(Addr addr, bool pm, Tick *done)
    {
        MemRequest req;
        req.addr = addr;
        req.op = MemOp::Read;
        req.isPm = pm;
        req.onComplete = [done](Tick t) { *done = t; };
        ASSERT_TRUE(ctrl.enqueue(req));
    }

    void
    write(Addr addr, bool pm, Tick *done = nullptr)
    {
        MemRequest req;
        req.addr = addr;
        req.op = MemOp::Write;
        req.isPm = pm;
        if (done != nullptr)
            req.onComplete = [done](Tick t) { *done = t; };
        ASSERT_TRUE(ctrl.enqueue(req));
    }
};

TEST(ControllerPolicy, SameBlockWritesCoalesce)
{
    Harness h(baseConfig());
    Tick first = 0, second = 0;
    h.write(0x100, true, &first);
    h.write(0x100, true, &second);
    h.eq.run();
    EXPECT_EQ(h.ctrl.stats().coalescedWrites.value(), 1u);
    // Both callbacks fire, and only one device write was issued.
    EXPECT_GT(first, 0u);
    EXPECT_EQ(first, second);
    EXPECT_EQ(h.ctrl.stats().pmWrites.value(), 1u);
}

TEST(ControllerPolicy, DifferentBlocksDontCoalesce)
{
    Harness h(baseConfig());
    h.write(0x100, true);
    h.write(0x140, true);
    h.eq.run();
    EXPECT_EQ(h.ctrl.stats().coalescedWrites.value(), 0u);
    EXPECT_EQ(h.ctrl.stats().pmWrites.value(), 2u);
}

TEST(ControllerPolicy, ReadsPreemptQueuedWrites)
{
    // Fill the write queue past the idle-burst threshold, then inject
    // a read: the read must complete long before the write backlog
    // drains.
    auto cfg = baseConfig();
    Harness h(cfg);
    std::vector<Tick> wdone(40, 0);
    for (int i = 0; i < 40; ++i)
        h.write(static_cast<Addr>(i) * 2048 * 32, true, &wdone[i]);
    Tick rdone = 0;
    h.read(0x10000000, true, &rdone);
    h.eq.run();
    Tick last_write = 0;
    for (Tick t : wdone)
        last_write = std::max(last_write, t);
    EXPECT_LT(rdone, last_write);
}

TEST(ControllerPolicy, VlewChunksInterleaveAcrossBanks)
{
    // Consecutive 2KB chunks land on different banks: two sequential
    // chunk reads overlap, two blocks within a chunk share a bank/row.
    Harness h(baseConfig());
    Tick a = 0, b = 0;
    h.read(0, true, &a);
    h.read(32 * 64, true, &b); // next VLEW chunk -> next bank
    h.eq.run();
    // Overlapped: second completes within ~a burst of the first, far
    // sooner than a serialized pair (2 x tRCD ~ 500ns for PCM).
    EXPECT_LT(std::max(a, b), nsToTicks(2 * 250 + 50));
}

TEST(ControllerPolicy, SequentialBlocksWithinChunkShareRow)
{
    Harness h(baseConfig());
    Tick a = 0;
    h.read(0, true, &a);
    h.eq.run();
    const Tick start = h.eq.now();
    Tick b = 0;
    h.read(64, true, &b);
    h.eq.run();
    EXPECT_EQ(h.ctrl.stats().rowHits.value(), 1u);
    EXPECT_LT(b - start, nsToTicks(30)); // CAS + burst only
}

TEST(ControllerPolicy, AgeBoundFlushesLoneWrite)
{
    auto cfg = baseConfig();
    cfg.writeMaxAge = nsToTicks(500);
    Harness h(cfg);
    Tick done = 0;
    h.write(0x40, true, &done);
    h.eq.run();
    // Held for the age bound, then serviced with PCM write timing:
    // age + tRCD + tCWD + burst + tWR.
    EXPECT_GE(done, nsToTicks(500 + 600));
    EXPECT_LT(done, nsToTicks(500 + 250 + 10 + 4 + 600 + 60));
}

TEST(ControllerPolicy, IdleBurstDrainsEarly)
{
    auto cfg = baseConfig();
    cfg.writeIdleBurst = 4;
    cfg.writeMaxAge = nsToTicks(1000000); // age alone would take 1ms
    Harness h(cfg);
    std::vector<Tick> done(4, 0);
    for (int i = 0; i < 4; ++i)
        h.write(static_cast<Addr>(i) * 2048 * 32, true, &done[i]);
    h.eq.run();
    for (Tick t : done) {
        EXPECT_GT(t, 0u);
        EXPECT_LT(t, nsToTicks(5000));
    }
}

TEST(ControllerPolicy, EurDrainPenaltyDelaysNextRowUser)
{
    // A dirty EUR register adds its drain latency to the row close.
    auto cfg = baseConfig();
    cfg.eurEnabled = true;
    cfg.eurDrainPerReg = nsToTicks(100);
    cfg.writeMaxAge = nsToTicks(100);
    Harness h(cfg);
    Tick wdone = 0;
    h.write(0, true, &wdone);
    h.eq.run(); // now == write completion; row 0 of bank 0 still open
    // Conflict on the same bank: rows hold 4 chunks, so chunk 64
    // (64 * 2KB) is bank 0, row 1. The close must pay the EUR drain
    // plus tRP plus tRCD.
    const Tick start = h.eq.now();
    Tick rdone = 0;
    h.read(64 * 32 * 64, true, &rdone);
    h.eq.run();
    EXPECT_GE(rdone - start,
              cfg.eurDrainPerReg + baseConfig().pm.tRP +
                  baseConfig().pm.tRCD);
}

TEST(ControllerPolicy, BusSerializesBackToBackBursts)
{
    // 20 row-hit reads to the same bank: the data bus and bank timing
    // bound throughput; total time must exceed 20 bursts.
    Harness h(baseConfig());
    std::vector<Tick> done(20, 0);
    for (int i = 0; i < 20; ++i)
        h.read(static_cast<Addr>(i) * 64, true, &done[i]);
    h.eq.run();
    Tick last = 0;
    for (Tick t : done)
        last = std::max(last, t);
    EXPECT_GE(last, nsToTicks(250 + 20 * 3.3));
    EXPECT_GT(h.ctrl.stats().busBusyTicks, nsToTicks(20 * 3.2));
}

TEST(ControllerPolicy, StatsResetClearsEverything)
{
    Harness h(baseConfig());
    Tick done = 0;
    h.read(0x40, true, &done);
    h.eq.run();
    EXPECT_GT(h.ctrl.stats().pmReads.value(), 0u);
    h.ctrl.resetStats();
    EXPECT_EQ(h.ctrl.stats().pmReads.value(), 0u);
    EXPECT_EQ(h.ctrl.stats().rowMisses.value(), 0u);
    EXPECT_DOUBLE_EQ(h.ctrl.cFactor(), 0.0);
}

} // namespace
} // namespace nvck
