/**
 * @file
 * Crash-point plumbing in the timing path: the EUR's explicit drain
 * ordering and volatility, the controller's crash-point observation
 * hooks, and the ADR power-cut disposition of in-flight traffic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event.hh"
#include "mem/controller.hh"
#include "mem/eur.hh"

namespace nvck {
namespace {

TEST(CrashEur, DrainSlotsRetiresLowestSlotFirst)
{
    EurModel eur(4, 8);
    eur.recordWrite(1, 5);
    eur.recordWrite(1, 0);
    eur.recordWrite(1, 3);
    EXPECT_EQ(eur.pendingMask(1), (1ull << 5) | (1ull << 0) | (1ull << 3));

    std::vector<unsigned> order;
    const unsigned drained =
        eur.drainSlots(1, [&order](unsigned slot) {
            order.push_back(slot);
        });
    EXPECT_EQ(drained, 3u);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 5u);
    EXPECT_EQ(eur.pendingMask(1), 0u);
    EXPECT_EQ(eur.codeWrites(), 3u);
}

TEST(CrashEur, PowerCutDropsEveryPendingRegister)
{
    EurModel eur(4, 8);
    eur.recordWrite(0, 1);
    eur.recordWrite(2, 4);
    eur.recordWrite(2, 7);
    EXPECT_EQ(eur.powerCut(), 3u);
    for (unsigned bank = 0; bank < 4; ++bank)
        EXPECT_EQ(eur.pendingRegisters(bank), 0u);
    // Lost registers are not drained code writes.
    EXPECT_EQ(eur.codeWrites(), 0u);
    EXPECT_EQ(eur.dataWrites(), 3u);
}

MemControllerConfig
eurConfig()
{
    MemControllerConfig cfg;
    cfg.dram = ddr4_2400();
    cfg.pm = reramTiming();
    cfg.eurEnabled = true;
    return cfg;
}

TEST(CrashController, HooksObservePmWritesAndDrains)
{
    EventQueue eq;
    MemController ctrl(eq, eurConfig());

    std::vector<Addr> write_hooks;
    std::vector<std::pair<unsigned, unsigned>> drain_hooks;
    unsigned row_closes = 0;
    CrashHooks hooks;
    hooks.onPmWrite = [&](Addr addr, unsigned, unsigned) {
        write_hooks.push_back(addr);
    };
    hooks.onEurDrain = [&](unsigned bank, unsigned slot) {
        drain_hooks.push_back({bank, slot});
    };
    hooks.onRowClose = [&](unsigned) { ++row_closes; };
    ctrl.setCrashHooks(std::move(hooks));

    for (Addr a : {Addr{0}, Addr{64}}) {
        MemRequest req;
        req.addr = a;
        req.op = MemOp::Write;
        req.isPm = true;
        ASSERT_TRUE(ctrl.enqueue(req));
    }
    eq.run();
    ASSERT_EQ(write_hooks.size(), 2u);
    EXPECT_EQ(write_hooks[0], 0u);
    EXPECT_EQ(write_hooks[1], 64u);
    EXPECT_TRUE(drain_hooks.empty()); // row still open

    // Conflict on the same bank closes the row and drains the EUR.
    const unsigned bpr = ctrl.blocksPerRow(true);
    MemRequest probe;
    probe.addr = static_cast<Addr>(bpr) * blockBytes * 16;
    probe.op = MemOp::Write;
    probe.isPm = true;
    ASSERT_TRUE(ctrl.enqueue(probe));
    eq.run();
    EXPECT_GE(row_closes, 1u);
    ASSERT_GE(drain_hooks.size(), 1u);
    EXPECT_EQ(drain_hooks[0].second, 0u); // both writes share slot 0
}

TEST(CrashController, PowerCutFlushesPmDropsTheRest)
{
    EventQueue eq;
    MemController ctrl(eq, eurConfig());

    // Enqueue without running the event loop: everything stays queued.
    MemRequest pm_wr;
    pm_wr.addr = 0;
    pm_wr.op = MemOp::Write;
    pm_wr.isPm = true;
    ASSERT_TRUE(ctrl.enqueue(pm_wr));
    MemRequest dram_wr;
    dram_wr.addr = 1 << 20;
    dram_wr.op = MemOp::Write;
    dram_wr.isPm = false;
    ASSERT_TRUE(ctrl.enqueue(dram_wr));
    bool read_completed = false;
    MemRequest rd;
    rd.addr = 4096;
    rd.op = MemOp::Read;
    rd.isPm = true;
    rd.onComplete = [&read_completed](Tick) { read_completed = true; };
    ASSERT_TRUE(ctrl.enqueue(rd));

    const PowerCutReport report = ctrl.powerCut();
    EXPECT_EQ(report.pmWritesFlushed, 1u);
    EXPECT_EQ(report.dramWritesDropped, 1u);
    EXPECT_EQ(report.readsDropped, 1u);
    EXPECT_TRUE(ctrl.idle());

    // Dead requests never complete, and the rebooted controller still
    // services fresh traffic.
    eq.run();
    EXPECT_FALSE(read_completed);
    Tick done = 0;
    MemRequest fresh;
    fresh.addr = 64;
    fresh.op = MemOp::Read;
    fresh.isPm = true;
    fresh.onComplete = [&done](Tick t) { done = t; };
    ASSERT_TRUE(ctrl.enqueue(fresh));
    eq.run();
    EXPECT_GT(done, 0u);
}

TEST(CrashController, PowerCutLosesPendingEurRegisters)
{
    EventQueue eq;
    MemController ctrl(eq, eurConfig());
    MemRequest req;
    req.addr = 0;
    req.op = MemOp::Write;
    req.isPm = true;
    ASSERT_TRUE(ctrl.enqueue(req));
    eq.run(); // write issues; its code delta is EUR-held
    EXPECT_EQ(ctrl.eurState().pendingRegisters(0), 1u);

    const PowerCutReport report = ctrl.powerCut();
    EXPECT_EQ(report.eurRegistersLost, 1u);
    EXPECT_EQ(ctrl.eurState().pendingRegisters(0), 0u);
}

} // namespace
} // namespace nvck
