#!/usr/bin/env python3
"""Threshold gate for the CI bench-smoke job.

Compares a freshly produced BENCH_*.json against its checked-in
baseline (bench/baselines/) and fails when any shared result entry is
more than --max-regress times slower than the baseline. The bound is
deliberately loose: CI runners are noisy, so this catches
order-of-magnitude regressions (a kernel silently falling back to the
scalar path, an accidentally quadratic loop), not jitter.

Result entries are keyed by their string-valued fields (code/kernel/op
for codec_throughput, scenario/path for scrub_throughput), so adding
or removing scenarios never breaks the gate: only keys present in BOTH
files are compared, and the counts are reported.

Usage:
  check_bench.py --baseline bench/baselines/BENCH_x.json \
                 --current BENCH_x.json [--max-regress 2.0]

A missing baseline file is not an error: new benches land before
their baseline is recorded, so the gate warns and skips (exit 0)
instead of failing the job. Corrupt or malformed files still exit 2.

Exit codes: 0 ok (or baseline missing), 1 regression found,
2 bad invocation/input.
"""

import argparse
import json
import os
import sys


def load_results(path):
    """Map result-entry key -> mbps for one BENCH_*.json file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list):
        print(f"check_bench: {path} has no results list", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in results:
        key = "/".join(
            str(entry[k])
            for k in sorted(entry)
            if isinstance(entry[k], str)
        )
        out[key] = float(entry.get("mbps", 0.0))
    return doc.get("benchmark", "?"), out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in reference BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--max-regress", type=float, default=2.0,
                        help="fail when baseline/current exceeds this "
                             "ratio (default 2.0)")
    args = parser.parse_args()
    if args.max_regress <= 0:
        parser.error("--max-regress must be positive")

    if not os.path.exists(args.baseline):
        print(f"check_bench: baseline {args.baseline} not found; "
              f"skipping the gate (record one to arm it)",
              file=sys.stderr)
        sys.exit(0)

    base_name, base = load_results(args.baseline)
    cur_name, cur = load_results(args.current)
    if base_name != cur_name:
        print(f"check_bench: benchmark mismatch: baseline is "
              f"'{base_name}', current is '{cur_name}'", file=sys.stderr)
        sys.exit(2)

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("check_bench: no shared result entries to compare",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    for key in shared:
        if base[key] <= 0.0:
            continue
        ratio = base[key] / cur[key] if cur[key] > 0.0 else float("inf")
        marker = "FAIL" if ratio > args.max_regress else "ok"
        print(f"  [{marker}] {key}: baseline {base[key]:.2f} MB/s, "
              f"current {cur[key]:.2f} MB/s ({ratio:.2f}x slower)")
        if ratio > args.max_regress:
            failures.append(key)

    skipped = (len(base) - len(shared), len(cur) - len(shared))
    print(f"check_bench[{base_name}]: {len(shared)} compared, "
          f"{skipped[0]} baseline-only, {skipped[1]} current-only, "
          f"{len(failures)} regressed (>{args.max_regress}x)")
    if failures:
        print("check_bench: regression in: " + ", ".join(failures),
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
